package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosSoak hammers a chaos-armed pool with concurrent mixed
// submit/poll/cancel traffic from several clients and asserts the
// service invariants the daemon is built around: /healthz stays 200
// throughout, every accepted job reaches a terminal state, rejected
// submissions are typed (429/503, never a hang), injected panics never
// escape a session, and drain completes. The default run is short so
// `go test ./...` stays fast; HAMMERTIME_SOAK=60s (any Go duration)
// scales it up for CI.
func TestChaosSoak(t *testing.T) {
	dur := 2 * time.Second
	if v := os.Getenv("HAMMERTIME_SOAK"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad HAMMERTIME_SOAK %q: %v", v, err)
		}
		dur = d
	} else if testing.Short() {
		t.Skip("short mode")
	}

	chaos, err := ParseChaos("latency=5ms:0.4,panic:0.15,cancel:0.15", 42)
	if err != nil {
		t.Fatal(err)
	}
	// The fake run mixes quick successes, slow jobs (cancellation bait)
	// and organic failures; chaos layers latency, panics and injected
	// cancellations on top.
	var seq atomic.Uint64
	m := NewManager(Config{
		Sessions: 3, QueueDepth: 6, RatePerSec: 200, Burst: 50,
		JobTimeout:        250 * time.Millisecond,
		TrustClientHeader: true,
		Chaos:             chaos,
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			switch seq.Add(1) % 5 {
			case 0: // slow: cancelled by timeout, DELETE, or chaos
				select {
				case <-ctx.Done():
					return "", context.Cause(ctx)
				case <-time.After(time.Second):
					return "slow table\n", nil
				}
			case 1:
				return "", fmt.Errorf("soak: organic failure")
			default:
				select {
				case <-ctx.Done():
					return "", context.Cause(ctx)
				case <-time.After(time.Millisecond):
					return "table\n", nil
				}
			}
		},
	})
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	stop := make(chan struct{})
	time.AfterFunc(dur, func() { close(stop) })
	var (
		wg        sync.WaitGroup
		submitted atomic.Int64
		shed      atomic.Int64
		badStatus atomic.Int64
	)

	// Submitting clients: each submits, sometimes cancels, polls status.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("soak-%d", c)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req, _ := http.NewRequest("POST", srv.URL+"/v1/jobs",
					strings.NewReader(`{"experiment":"e1","horizon":1000}`))
				req.Header.Set("X-Hammertime-Client", client)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					badStatus.Add(1)
					continue
				}
				var body map[string]any
				json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					submitted.Add(1)
					if id, _ := body["id"].(string); id != "" && i%3 == 0 {
						del, _ := http.NewRequest("DELETE", srv.URL+"/v1/jobs/"+id, nil)
						if resp, err := http.DefaultClient.Do(del); err == nil {
							resp.Body.Close()
						}
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed.Add(1)
					time.Sleep(2 * time.Millisecond)
				default:
					badStatus.Add(1)
				}
				time.Sleep(time.Millisecond)
			}
		}(c)
	}

	// Health prober: /healthz must stay 200 for the entire soak.
	healthFail := make(chan string, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/healthz", "/metrics", "/v1/jobs?max=5"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					select {
					case healthFail <- fmt.Sprintf("%s: %v", path, err):
					default:
					}
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					select {
					case healthFail <- fmt.Sprintf("%s: %d", path, resp.StatusCode):
					default:
					}
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	select {
	case msg := <-healthFail:
		t.Fatalf("health probe failed mid-soak: %s", msg)
	default:
	}
	if n := badStatus.Load(); n > 0 {
		t.Fatalf("%d requests got untyped failures", n)
	}
	if submitted.Load() == 0 {
		t.Fatal("soak accepted no jobs; nothing was exercised")
	}

	// Drain must complete: every accepted job reaches a terminal state.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	nonTerminal := 0
	for _, v := range m.Jobs(0) {
		if !v.State.Terminal() {
			nonTerminal++
		}
	}
	if nonTerminal > 0 {
		t.Fatalf("%d jobs stuck non-terminal after drain", nonTerminal)
	}
	t.Logf("soak %v: submitted=%d shed=%d jobs=%d",
		dur, submitted.Load(), shed.Load(), len(m.Jobs(0)))
}
