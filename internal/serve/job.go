package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hammertime/internal/telemetry"
)

// JobState is a job's position in its lifecycle.
type JobState string

const (
	// StateQueued: accepted, waiting for a session.
	StateQueued JobState = "queued"
	// StateRunning: a session is simulating it.
	StateRunning JobState = "running"
	// StateDone: finished; the result table is available.
	StateDone JobState = "done"
	// StateFailed: the run errored or its session panicked.
	StateFailed JobState = "failed"
	// StateCancelled: torn down by a client cancel, the job deadline, or
	// daemon shutdown, via the same cooperative cancellation path the
	// harness uses (core.ErrCancelled).
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobRequest is the client's submission: which experiment to run and how
// far. It is the unit of admission control — everything here is
// validated before the job is queued.
type JobRequest struct {
	// Experiment is the experiment id (e1..e10).
	Experiment string `json:"experiment"`
	// Horizon is the simulation horizon in cycles (0 = experiment default).
	Horizon uint64 `json:"horizon,omitempty"`
	// Timeout overrides the daemon's per-job deadline for this job
	// (capped at the daemon's; 0 = daemon default).
	Timeout Duration `json:"timeout,omitempty"`
	// Events, when non-empty, streams simulator events over the job's
	// SSE stream (GET /v1/jobs/{id}/events): a comma-separated list of
	// obs kind names ("bit-flip,trr-cure"), or "all". Off by default —
	// attaching a recorder disables the simulator's unobserved
	// fast-forward path, so raw event streaming is strictly opt-in.
	// Progress and cell-completion records stream regardless.
	Events string `json:"events,omitempty"`
}

// Duration is a time.Duration that marshals as a Go duration string
// ("30s") instead of nanoseconds, so curl requests stay writable.
type Duration time.Duration

// MarshalJSON renders the duration as a quoted Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", time.Duration(d).String())), nil
}

// UnmarshalJSON accepts either a quoted Go duration string or a number
// of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		parsed, err := time.ParseDuration(s[1 : len(s)-1])
		if err != nil {
			return fmt.Errorf("serve: bad duration %s: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ns int64
	if _, err := fmt.Sscan(s, &ns); err != nil {
		return fmt.Errorf("serve: bad duration %s", s)
	}
	*d = Duration(ns)
	return nil
}

// Job is one submitted simulation. All mutable fields are guarded by mu;
// JobView is the lock-free snapshot handed to the HTTP layer.
type Job struct {
	ID      string
	Client  string
	Request JobRequest
	// Restarts counts daemon restarts this job survived: 0 for a job
	// accepted by the current process, +1 each time a crash-restarted
	// daemon found it non-terminal in the store and resubmitted it.
	// Immutable after construction.
	Restarts int

	mu        sync.Mutex
	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	table     string // rendered result table (StateDone)
	errMsg    string // failure/cancellation cause (terminal non-done states)

	// cancel tears down the job: pre-run it marks the job cancelled
	// directly, mid-run it cancels the session's context and the
	// simulation unwinds cooperatively. Set at submission.
	cancel context.CancelCauseFunc
	// runCtx is the job's context (derived from the manager's base
	// context at submission); the session threads it into the harness.
	runCtx context.Context

	done chan struct{} // closed on any terminal transition

	// scope is the job's telemetry: its tracer (one trace per job), the
	// hub its SSE subscribers attach to, and — only when the request
	// opted in via Events — the obs recorder streaming simulator events.
	// Immutable after submission.
	scope *telemetry.Scope
	// traceID is the persisted trace id of a job replayed from the store
	// in a terminal state: such a job has no live tracer (its spans died
	// with the previous process), but status responses still report the
	// id so externally exported traces remain correlatable. Live jobs
	// leave it empty and answer from the scope's tracer.
	traceID string
	// Lifecycle spans: job covers submit→terminal, queued covers the
	// queue wait, run covers the session's execution. Ended by the
	// manager at the matching transitions; Span.End is first-wins, so
	// the belt-and-braces endSpans on terminal transitions is safe.
	jobSpan, queuedSpan, runSpan *telemetry.Span
}

// TraceID returns the job's telemetry trace id: the live tracer's for a
// job of this process, the persisted one for a terminal job replayed
// from the store ("" when neither exists).
func (j *Job) TraceID() string {
	if j.scope == nil || j.scope.Tracer == nil {
		return j.traceID
	}
	return j.scope.Tracer.ID().String()
}

// endSpans closes any still-open lifecycle spans (End keeps the first
// end, so spans already closed at their proper transition are not
// moved). Called on terminal transitions so a cancelled-while-queued
// job doesn't leak open spans into its trace.
func (j *Job) endSpans(err error) {
	j.runSpan.EndErr(err)
	j.queuedSpan.End()
	j.jobSpan.EndErr(err)
}

// JobView is an immutable snapshot of a job for status responses.
type JobView struct {
	ID         string     `json:"id"`
	Experiment string     `json:"experiment"`
	Horizon    uint64     `json:"horizon,omitempty"`
	State      JobState   `json:"state"`
	Submitted  time.Time  `json:"submitted"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
	Error      string     `json:"error,omitempty"`
	// TraceID is the job's telemetry trace id; fetch the trace at
	// GET /v1/jobs/{id}/trace and match spans by this id.
	TraceID string `json:"trace_id,omitempty"`
	// Restarts is how many daemon restarts the job survived: a job that
	// was resumed from the persistent store after a crash reports >= 1,
	// so a client polling across the restart can tell its job was
	// recovered rather than re-run from scratch.
	Restarts int `json:"restarts,omitempty"`
}

// View snapshots the job under its lock.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.ID,
		Experiment: j.Request.Experiment,
		Horizon:    j.Request.Horizon,
		State:      j.state,
		Submitted:  j.submitted,
		Error:      j.errMsg,
		TraceID:    j.TraceID(),
		Restarts:   j.Restarts,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the rendered table, or false until the job is done.
func (j *Job) Result() (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.table, j.state == StateDone
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// transition moves the job to state under its lock; terminal
// transitions are idempotent and first-wins (a job cancelled while its
// session is finishing stays cancelled). Reports whether the
// transition applied.
func (j *Job) transition(state JobState, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.errMsg = errMsg
	switch state {
	case StateRunning:
		j.started = time.Now()
	case StateDone, StateFailed, StateCancelled:
		j.finished = time.Now()
		close(j.done)
	}
	return true
}

// record snapshots the job as a store JobRecord under its lock. The
// snapshot is complete — the journal's last-record-wins replay depends
// on every append carrying the whole job, not a delta.
func (j *Job) record() JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobRecord{
		ID:        j.ID,
		Client:    j.Client,
		Request:   j.Request,
		State:     j.state,
		TraceID:   j.TraceID(),
		Restarts:  j.Restarts,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Table:     j.table,
		Error:     j.errMsg,
	}
}

// replayedJob rebuilds a terminal job from its journaled record: an
// inert registry entry — result table, error, timestamps, persisted
// trace id — with no contexts, spans or hub (its run died with the
// process that executed it). GET /v1/jobs/{id} and /result serve it
// exactly as if the daemon had never restarted.
func replayedJob(rec JobRecord) *Job {
	j := &Job{
		ID:       rec.ID,
		Client:   rec.Client,
		Request:  rec.Request,
		Restarts: rec.Restarts,
		state:    rec.State,
		traceID:  rec.TraceID,

		submitted: rec.Submitted,
		started:   rec.Started,
		finished:  rec.Finished,
		table:     rec.Table,
		errMsg:    rec.Error,
		cancel:    func(error) {},
		done:      make(chan struct{}),
	}
	close(j.done)
	return j
}

// setResult records the rendered table and marks the job done.
func (j *Job) setResult(table string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.table = table
	j.state = StateDone
	j.finished = time.Now()
	close(j.done)
	return true
}
