package serve

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"hammertime/internal/sim"
)

// Chaos is the fault-injection middleware of the session pool: before a
// session runs a job it rolls for injected latency, an injected panic
// (which must be contained by the pool's per-session isolation, not kill
// the daemon), and an injected cancellation (which must tear the job
// down exactly like a client DELETE). It extends the philosophy of the
// harness's HAMMERTIME_FAIL_CELL failpoint from single cells to the
// serving layer: the soak test runs a busy daemon under all three
// faults and asserts the pool stays healthy.
//
// Randomness comes from a seeded sim.RNG behind a mutex, so a chaos
// schedule is reproducible for a given seed and roll sequence (the
// arrival order of jobs still varies — chaos soaks are stress tests,
// not golden tests).
type Chaos struct {
	// Latency is the injected pre-run delay; LatencyP its probability.
	Latency  time.Duration
	LatencyP float64
	// PanicP is the probability a session panics mid-job.
	PanicP float64
	// CancelP is the probability the job's context is cancelled mid-run.
	CancelP float64

	mu  sync.Mutex
	rng *sim.RNG
}

// ParseChaos parses a chaos spec like "latency=20ms:0.5,panic:0.1,
// cancel:0.2" (any subset, comma-separated) into a seeded Chaos. An
// empty spec returns nil: chaos disabled.
func ParseChaos(spec string, seed uint64) (*Chaos, error) {
	if spec == "" {
		return nil, nil
	}
	c := &Chaos{rng: sim.NewRNG(seed)}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		head, probStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("serve: chaos %q: want fault:probability", part)
		}
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("serve: chaos %q: bad probability %q", part, probStr)
		}
		switch {
		case strings.HasPrefix(head, "latency="):
			d, err := time.ParseDuration(strings.TrimPrefix(head, "latency="))
			if err != nil || d < 0 {
				return nil, fmt.Errorf("serve: chaos %q: bad latency duration", part)
			}
			c.Latency, c.LatencyP = d, prob
		case head == "panic":
			c.PanicP = prob
		case head == "cancel":
			c.CancelP = prob
		default:
			return nil, fmt.Errorf("serve: chaos %q: unknown fault (want latency=<dur>, panic, cancel)", part)
		}
	}
	return c, nil
}

// roll draws one uniform sample; nil-safe (never fires when disabled).
func (c *Chaos) roll(p float64) bool {
	if c == nil || p <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Bool(p)
}

// String renders the active spec (for startup logs).
func (c *Chaos) String() string {
	if c == nil {
		return "off"
	}
	var parts []string
	if c.LatencyP > 0 {
		parts = append(parts, fmt.Sprintf("latency=%v:%g", c.Latency, c.LatencyP))
	}
	if c.PanicP > 0 {
		parts = append(parts, fmt.Sprintf("panic:%g", c.PanicP))
	}
	if c.CancelP > 0 {
		parts = append(parts, fmt.Sprintf("cancel:%g", c.CancelP))
	}
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, ",")
}
