// Package serve is the simulation-as-a-service layer behind cmd/hammerd:
// a bounded pool of simulation sessions fed by an admission-controlled
// job queue over the experiment harness. It exists because the paper's
// grids are minutes-long batch jobs: a daemon that accepts them must
// bound its own concurrency (session pool), shed load instead of
// queueing without bound (bounded queue + per-client token buckets, 429
// with Retry-After), survive a crashing simulation (per-session panic
// isolation), stop a running one on request (the cooperative
// cancellation threaded through core.Machine.RunCtx — a cancelled job
// tears its machine down auditor-consistent, it is not abandoned), and
// drain gracefully on SIGTERM (finish running jobs, reject new ones,
// then exit 0). The chaos middleware (chaos.go) injects latency, panics
// and cancellations into the pool so those properties stay tested.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hammertime/internal/harness"
	"hammertime/internal/obs"
	"hammertime/internal/sim"
	"hammertime/internal/telemetry"
)

// RunFunc executes one job's simulation and returns the rendered result
// table. The default runs the harness experiment dispatcher; tests
// substitute fast fakes.
type RunFunc func(ctx context.Context, req JobRequest) (string, error)

// Config parametrizes a Manager. The zero value serves: 2 sessions, an
// 8-deep queue, 5 submissions/s/client with burst 10, no job deadline,
// no chaos.
type Config struct {
	// Sessions is the pool size: at most this many jobs simulate
	// concurrently (0 = 2).
	Sessions int
	// QueueDepth bounds the jobs waiting for a session; submissions
	// beyond it are shed with 429 + Retry-After (0 = 8).
	QueueDepth int
	// RatePerSec and Burst parametrize the per-client token buckets
	// (RatePerSec 0 = 5/s; < 0 disables limiting; Burst 0 = 10).
	RatePerSec float64
	Burst      int
	// JobTimeout is the per-job running deadline (0 = none). A request's
	// own Timeout may only tighten it.
	JobTimeout time.Duration
	// Chaos, when non-nil, injects faults into the pool (see chaos.go).
	Chaos *Chaos
	// Run overrides the simulation runner (nil = harness.Experiment).
	Run RunFunc
	// Logger receives structured request/job/drain logs (nil = silent,
	// the historical behavior).
	Logger *slog.Logger
	// TrustClientHeader keys rate limiting by the X-Hammertime-Client
	// header when set. Off by default: the header is unauthenticated, so
	// trusting it lets any caller mint fresh rate-limit identities per
	// request (or exhaust another client's budget by impersonation).
	// Enable only behind a proxy that strips or validates it.
	TrustClientHeader bool
	// ExtraMetrics, when non-nil, contributes additional metrics to every
	// Metrics snapshot — the cluster dispatcher wires its cache/steal
	// counters here. It is called outside the manager's locks with a
	// scratch Stats already holding the serve metrics.
	ExtraMetrics func(*sim.Stats)
	// Store, when non-nil, makes the registry durable: every accepted
	// job is journaled across its lifecycle, running jobs thread a
	// per-job harness checkpoint, and NewManager replays the journal —
	// terminal jobs reappear with their tables, orphaned queued/running
	// jobs are resubmitted under their original id and trace and resume
	// from their last completed cells. cmd/hammerd wires -state-dir here
	// via OpenStore.
	Store *Store
	// RetentionAge evicts terminal jobs from the registry (and the
	// store's next compaction) once they have been finished this long
	// (0 = 6h; < 0 disables the age bound). Running and queued jobs are
	// never evicted.
	RetentionAge time.Duration
	// RetentionMax bounds how many terminal jobs the registry retains;
	// beyond it the oldest-finished are evicted (0 = 4096; < 0 disables
	// the count bound). Without retention a long-lived daemon leaked
	// every job ever submitted.
	RetentionMax int
}

func (c *Config) applyDefaults() {
	if c.Sessions <= 0 {
		c.Sessions = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 5
	}
	if c.Burst <= 0 {
		c.Burst = 10
	}
	if c.RetentionAge == 0 {
		c.RetentionAge = 6 * time.Hour
	}
	if c.RetentionMax == 0 {
		c.RetentionMax = 4096
	}
	if c.Run == nil {
		c.Run = func(ctx context.Context, req JobRequest) (string, error) {
			tb, err := harness.Experiment(ctx, req.Experiment, req.Horizon, harness.AttackOpts{})
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		}
	}
}

// ErrDraining rejects submissions while the daemon is shutting down.
var ErrDraining = errors.New("serve: draining, not accepting new jobs")

// ErrUnknownJob marks lookups of job ids the daemon has never seen.
var ErrUnknownJob = errors.New("serve: unknown job")

// OverloadError is a shed submission: the queue is full or the client
// is over its rate. The HTTP layer renders it as 429 with Retry-After.
type OverloadError struct {
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// errChaosCancel is the cancellation cause injected by chaos middleware.
var errChaosCancel = errors.New("serve: chaos: injected cancellation")

// Manager owns the session pool, the job queue and the job registry.
type Manager struct {
	cfg     Config
	limiter *limiter
	log     *slog.Logger
	store   *Store
	now     func() time.Time // test hook for the retention sweep

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	mu            sync.Mutex
	jobs          map[string]*Job
	queue         chan *Job
	draining      bool
	drainDeadline time.Time
	lastSweep     time.Time
	evicted       int64 // lifetime retention evictions

	// Recovery counts, fixed at NewManager: terminal jobs replayed into
	// the registry and orphans resubmitted for resume.
	replayed, resumed int

	running atomic.Int64
	nextID  atomic.Uint64
	wg      sync.WaitGroup

	statsMu sync.Mutex
	stats   *sim.Stats
}

// NewManager builds the manager, replays the persistent store when one
// is configured (terminal jobs reappear, orphaned queued/running jobs
// are resubmitted to resume from their checkpoints), and starts the
// session pool.
func NewManager(cfg Config) *Manager {
	cfg.applyDefaults()
	ctx, cancel := context.WithCancelCause(context.Background())
	m := &Manager{
		cfg:        cfg,
		limiter:    newLimiter(cfg.RatePerSec, cfg.Burst),
		log:        telemetry.OrNop(cfg.Logger),
		store:      cfg.Store,
		now:        time.Now,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		stats:      &sim.Stats{},
	}
	// Job latency buckets: 1ms up through ~1h (simulation grids are
	// minutes-long; the default 1s-based buckets would flatten them).
	m.stats.NewHistogram("serve.job.seconds", sim.ExpBuckets(0.001, 4, 12))

	// Recovery runs before the sessions start, so orphans are enqueued
	// without racing admission. The queue is over-provisioned by the
	// orphan count: recovered work was already accepted once and must
	// not be shed, while new submissions stay bounded by QueueDepth (an
	// explicit check in Submit, not channel capacity).
	orphans := m.recover()
	m.queue = make(chan *Job, cfg.QueueDepth+len(orphans))
	for _, job := range orphans {
		m.queue <- job
		m.jobs[job.ID] = job
		m.persist(job)
		m.log.Info("job resumed from store",
			"job", job.ID, "trace", job.TraceID(), "client", job.Client,
			"experiment", job.Request.Experiment, "restarts", job.Restarts)
	}
	for i := 0; i < cfg.Sessions; i++ {
		m.wg.Add(1)
		go m.session(i)
	}
	return m
}

// recover replays the store into the registry. Terminal records become
// inert jobs (after the same retention filter the live sweep applies,
// so a restart does not resurrect evicted history); queued or running
// records are orphans of the dead process — rebuilt as live jobs under
// their original id, submission time and trace id, with Restarts
// bumped, and returned for the caller to enqueue. Also restores the id
// counter past every recovered id and clears checkpoint debris of jobs
// that no longer need one.
func (m *Manager) recover() []*Job {
	if m.store == nil {
		return nil
	}
	recs := applyRetention(m.store.Records(), m.now(), m.cfg.RetentionAge, m.cfg.RetentionMax)
	live := make(map[string]bool)
	var orphans []*Job
	var maxID uint64
	for _, rec := range recs {
		var n uint64
		if _, err := fmt.Sscanf(rec.ID, "job-%d", &n); err == nil && n > maxID {
			maxID = n
		}
		if rec.State.Terminal() {
			m.jobs[rec.ID] = replayedJob(rec)
			m.replayed++
			continue
		}
		// Orphan: the previous process died with this job queued or
		// running. Resubmit it with its trace preserved, so the trace a
		// client captured at submission still names the job's spans.
		tracer := telemetry.NewTracer()
		if tid, ok := telemetry.ParseTraceID(rec.TraceID); ok {
			tracer = telemetry.NewTracerWithID(tid)
		}
		job := m.newJob(rec.ID, rec.Client, rec.Request, rec.Restarts+1, rec.Submitted, tracer)
		orphans = append(orphans, job)
		live[rec.ID] = true
		m.resumed++
	}
	// Keep only the id namespace monotonic: replayed and resumed ids
	// must never be re-minted for new submissions.
	m.nextID.Store(maxID)
	m.store.SweepCheckpoints(live)
	// Drop evicted history from the store's view too, so its next
	// compaction shrinks with the registry.
	kept := make(map[string]bool, len(recs))
	for _, rec := range recs {
		kept[rec.ID] = true
	}
	for _, rec := range m.store.Records() {
		if !kept[rec.ID] {
			m.store.Forget(rec.ID)
		}
	}
	// Rewrite the journal to the retained view: without this, records
	// evicted here (or by the previous process's live sweep) survive on
	// disk and are re-filtered at every restart forever.
	if err := m.store.Compact(); err != nil {
		m.log.Warn("store compaction after recovery failed", "err", err)
	}
	return orphans
}

// count bumps a server counter (the stats object is shared across
// sessions and HTTP handlers, hence the mutex).
func (m *Manager) count(name string) {
	m.statsMu.Lock()
	m.stats.Inc(name)
	m.statsMu.Unlock()
}

// observeHTTP records one served request into the per-route metrics:
// a latency histogram labeled by route pattern and a counter labeled
// by route + status code. Routes are mux patterns, not raw paths, so
// the label set stays bounded.
func (m *Manager) observeHTTP(route string, status int, secs float64) {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	hname := "serve.http.seconds;route=" + route
	if m.stats.Hist(hname) == nil {
		// 0.5ms up through ~2min: API calls cluster at the bottom, SSE
		// streams that follow a whole job live at the top.
		m.stats.NewHistogram(hname, sim.ExpBuckets(0.0005, 4, 10))
	}
	m.stats.Observe(hname, secs)
	m.stats.Inc("serve.http.requests;route=" + route + ";code=" + strconv.Itoa(status))
}

// Metrics snapshots the server counters plus live gauges, merged with
// whatever ExtraMetrics contributes.
func (m *Manager) Metrics() sim.StatsSnapshot {
	m.mu.Lock()
	registry := len(m.jobs)
	evicted := m.evicted
	m.mu.Unlock()
	m.statsMu.Lock()
	m.stats.SetGauge("serve.jobs.registry", float64(registry))
	m.stats.SetGauge("serve.jobs.evicted", float64(evicted))
	m.stats.SetGauge("serve.sessions", float64(m.cfg.Sessions))
	m.stats.SetGauge("serve.queue.depth", float64(len(m.queue)))
	m.stats.SetGauge("serve.queue.capacity", float64(m.cfg.QueueDepth))
	m.stats.SetGauge("serve.jobs.running", float64(m.running.Load()))
	if m.cfg.ExtraMetrics == nil {
		defer m.statsMu.Unlock()
		return m.stats.Snapshot()
	}
	var merged sim.Stats
	merged.Merge(m.stats)
	m.statsMu.Unlock()
	m.cfg.ExtraMetrics(&merged)
	return merged.Snapshot()
}

// avgJobSeconds is the measured mean job duration from the
// serve.job.seconds histogram, defaulting to one second before any job
// has completed. It feeds the Retry-After estimates: a daemon running
// minutes-long grids should not tell a shed client to come back in 5s.
func (m *Manager) avgJobSeconds() float64 {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	h := m.stats.Hist("serve.job.seconds")
	if h == nil || h.Count() == 0 {
		return 1
	}
	return h.Sum() / float64(h.Count())
}

// clampRetry bounds a Retry-After estimate to something a client can
// act on: at least a second, at most 15 minutes.
func clampRetry(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	if d > 15*time.Minute {
		return 15 * time.Minute
	}
	return d
}

// queueRetryAfter estimates when a queue slot frees: the queued backlog
// divided over the session pool, paced by the measured job duration.
func (m *Manager) queueRetryAfter() time.Duration {
	backlog := float64(len(m.queue)) / float64(m.cfg.Sessions)
	secs := m.avgJobSeconds() * (1 + backlog)
	return clampRetry(time.Duration(secs * float64(time.Second)))
}

// DrainRetryAfter estimates when the draining daemon's replacement can
// take traffic: the drain deadline's remaining time when one was set,
// otherwise the in-flight and queued work paced by the measured job
// duration. The HTTP layer sends it on 503s (readyz and shed submits).
func (m *Manager) DrainRetryAfter() time.Duration {
	m.mu.Lock()
	deadline := m.drainDeadline
	queued := len(m.queue)
	m.mu.Unlock()
	if !deadline.IsZero() {
		return clampRetry(time.Until(deadline))
	}
	work := float64(m.running.Load()) + float64(queued)
	batches := 1 + work/float64(m.cfg.Sessions)
	return clampRetry(time.Duration(batches * m.avgJobSeconds() * float64(time.Second)))
}

// Ready reports whether the daemon accepts new jobs (false once
// draining). Liveness is the process itself: /healthz answers 200 as
// long as the HTTP loop runs.
func (m *Manager) Ready() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.draining
}

// newJob constructs a live job — contexts, cancel cause, telemetry
// scope (tracer + SSE hub, plus an obs recorder when the request opted
// into event streaming), lifecycle spans. Shared by Submit (fresh
// tracer, restarts 0) and recovery (preserved id/trace, bumped
// restarts).
func (m *Manager) newJob(id, client string, req JobRequest, restarts int, submitted time.Time, tracer *telemetry.Tracer) *Job {
	jctx, cancel := context.WithCancelCause(m.baseCtx)
	job := &Job{
		ID:        id,
		Client:    client,
		Request:   req,
		Restarts:  restarts,
		state:     StateQueued,
		submitted: submitted,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	job.runCtx = jctx

	// Every job carries a telemetry scope: a tracer (the trace id goes
	// back in the submit response) and a hub for its SSE stream. The obs
	// recorder is attached only when the request opted into raw event
	// streaming — it would disable the simulator's unobserved fast path.
	job.scope = &telemetry.Scope{Tracer: tracer, Hub: telemetry.NewHub()}
	if req.Events != "" {
		rec := obs.NewRecorder(job.scope.Hub.ObsSink())
		if kinds, err := obs.ParseKinds(req.Events); err == nil && len(kinds) > 0 {
			rec.SetKinds(kinds...)
		}
		rec.SetJob(job.ID)
		job.scope.Observer = rec
	}
	sctx := telemetry.NewContext(context.Background(), job.scope)
	sctx, job.jobSpan = telemetry.StartSpan(sctx, "job")
	job.jobSpan.SetAttrs(
		telemetry.String("job", job.ID),
		telemetry.String("experiment", req.Experiment),
		telemetry.String("client", client),
	)
	if restarts > 0 {
		job.jobSpan.SetAttrs(telemetry.Int("restarts", int64(restarts)))
	}
	_, job.queuedSpan = telemetry.StartSpan(sctx, "queued")
	return job
}

// persist journals the job's current snapshot (no-op without a store).
func (m *Manager) persist(job *Job) {
	if m.store == nil {
		return
	}
	m.store.Append(job.record())
}

// Submit validates, admission-checks and enqueues a job. The typed
// errors map to HTTP: ErrDraining -> 503, *OverloadError -> 429 +
// Retry-After, anything else -> 400. Order matters: draining and
// queue-full are checked before the rate limiter spends a token, so a
// shed submission never also burns the client's budget — previously a
// client hitting a full queue was double-penalized (429 now and a
// poorer bucket on retry).
func (m *Manager) Submit(client string, req JobRequest) (*Job, error) {
	if !harness.ValidExperiment(req.Experiment) {
		m.count("serve.jobs.rejected.invalid")
		return nil, fmt.Errorf("serve: unknown experiment %q (want one of %v)",
			req.Experiment, harness.ExperimentIDs())
	}
	if req.Timeout < 0 {
		m.count("serve.jobs.rejected.invalid")
		return nil, fmt.Errorf("serve: negative timeout %v", time.Duration(req.Timeout))
	}
	if _, err := obs.ParseKinds(req.Events); err != nil {
		m.count("serve.jobs.rejected.invalid")
		return nil, fmt.Errorf("serve: bad events filter: %w", err)
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.count("serve.jobs.rejected.draining")
		return nil, ErrDraining
	}
	// New submissions are bounded by the configured depth, not channel
	// capacity (recovery may have over-provisioned the channel for
	// resumed jobs). Checked under m.mu — only Submit adds, so the bound
	// cannot be raced past.
	if len(m.queue) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		m.count("serve.jobs.rejected.queue")
		// Estimate the wait from the queue's measured drain rate: the
		// backlog spread over the session pool, paced by the mean job
		// duration observed so far — not a constant that undershoots by
		// orders of magnitude once real grids (minutes each) arrive.
		return nil, &OverloadError{Reason: "queue full", RetryAfter: m.queueRetryAfter()}
	}
	if ok, retry := m.limiter.allow(client); !ok {
		m.mu.Unlock()
		m.count("serve.jobs.rejected.rate")
		return nil, &OverloadError{Reason: "client rate limit", RetryAfter: retry}
	}
	m.sweepRetentionLocked(false)
	job := m.newJob(fmt.Sprintf("job-%d", m.nextID.Add(1)), client, req, 0, time.Now(), telemetry.NewTracer())
	select {
	case m.queue <- job:
	default:
		// Unreachable while the depth check above holds (capacity is
		// never below QueueDepth); kept as a fail-safe so a future
		// regression sheds instead of deadlocking under m.mu.
		m.mu.Unlock()
		job.cancel(errors.New("serve: queue full"))
		m.count("serve.jobs.rejected.queue")
		return nil, &OverloadError{Reason: "queue full", RetryAfter: m.queueRetryAfter()}
	}
	m.jobs[job.ID] = job
	m.mu.Unlock()
	m.persist(job)
	m.count("serve.jobs.submitted")
	m.log.Info("job submitted",
		"job", job.ID, "trace", job.TraceID(), "client", client,
		"experiment", req.Experiment, "horizon", req.Horizon)
	m.publishState(job)
	return job, nil
}

// publishState pushes the job's current view onto its hub as a "state"
// record, so SSE subscribers see lifecycle transitions alongside
// progress. Free when nobody is subscribed.
func (m *Manager) publishState(job *Job) {
	if job.scope != nil {
		job.scope.Hub.Publish("state", job.View())
	}
}

// Get returns the job by id.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return job, nil
}

// Cancel tears the job down: a queued job is marked cancelled before a
// session ever picks it up; a running job has its context cancelled and
// the simulation unwinds at its next cancellation point.
func (m *Manager) Cancel(id string) (*Job, error) {
	job, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	cause := errors.New("serve: cancelled by client")
	job.cancel(cause)
	// Pre-run (queued) jobs transition here; running jobs transition in
	// the session once the simulation unwinds, keeping state truthful —
	// "cancelled" means the machine is actually torn down.
	job.mu.Lock()
	queued := job.state == StateQueued
	job.mu.Unlock()
	if queued && job.transition(StateCancelled, cause.Error()) {
		m.count("serve.jobs.cancelled")
		job.endSpans(cause)
		m.persist(job)
		m.removeCheckpoint(job)
		m.log.Info("job cancelled while queued", "job", job.ID, "trace", job.TraceID())
		m.publishState(job)
	}
	return job, nil
}

// removeCheckpoint drops a terminal job's checkpoint file: the job will
// never resume, so its per-cell state is dead weight in the state dir.
func (m *Manager) removeCheckpoint(job *Job) {
	if m.store != nil {
		m.store.RemoveCheckpoint(job.ID)
	}
}

// Jobs lists every known job, newest first bounded by max (0 = all).
func (m *Manager) Jobs(max int) []JobView {
	m.mu.Lock()
	views := make([]JobView, 0, len(m.jobs))
	for _, j := range m.jobs {
		views = append(views, j.View())
	}
	m.mu.Unlock()
	// Newest first by submission time, id as the tie-break so replayed
	// histories (whole restarts share coarse timestamps) list stably.
	// O(n log n): with the store replaying full histories at startup
	// this path must not be quadratic in the journal size.
	sort.Slice(views, func(i, j int) bool {
		if !views[i].Submitted.Equal(views[j].Submitted) {
			return views[i].Submitted.After(views[j].Submitted)
		}
		return views[i].ID > views[j].ID
	})
	if max > 0 && len(views) > max {
		views = views[:max]
	}
	return views
}

// Recovered reports what NewManager rebuilt from the store: terminal
// jobs replayed into the registry and orphans resubmitted for resume.
func (m *Manager) Recovered() (replayed, resumed int) {
	return m.replayed, m.resumed
}

// retentionSweepEvery is the cadence of the opportunistic retention
// sweep run on the submission path.
const retentionSweepEvery = time.Minute

// sweepRetentionLocked evicts terminal jobs per the retention policy:
// first everything finished longer than RetentionAge ago, then the
// oldest-finished beyond RetentionMax. Live (queued/running) jobs are
// untouchable. Caller holds m.mu. Unless forced, the sweep runs at most
// once per retentionSweepEvery — eviction is O(registry) and rides the
// submission path.
func (m *Manager) sweepRetentionLocked(force bool) {
	if m.cfg.RetentionAge <= 0 && m.cfg.RetentionMax <= 0 {
		return
	}
	now := m.now()
	if !force && now.Sub(m.lastSweep) < retentionSweepEvery {
		return
	}
	m.lastSweep = now
	type aged struct {
		id       string
		finished time.Time
	}
	var terminal []aged
	for id, j := range m.jobs {
		v := j.View()
		if !v.State.Terminal() || v.Finished == nil {
			continue
		}
		if m.cfg.RetentionAge > 0 && now.Sub(*v.Finished) > m.cfg.RetentionAge {
			m.evictLocked(id)
			continue
		}
		terminal = append(terminal, aged{id, *v.Finished})
	}
	if m.cfg.RetentionMax > 0 && len(terminal) > m.cfg.RetentionMax {
		sort.Slice(terminal, func(a, b int) bool {
			return terminal[a].finished.Before(terminal[b].finished)
		})
		for _, t := range terminal[:len(terminal)-m.cfg.RetentionMax] {
			m.evictLocked(t.id)
		}
	}
}

// evictLocked removes one terminal job from the registry, the store's
// compaction view, and the checkpoint directory. Caller holds m.mu.
func (m *Manager) evictLocked(id string) {
	delete(m.jobs, id)
	m.evicted++
	if m.store != nil {
		m.store.Forget(id)
		m.store.RemoveCheckpoint(id)
	}
}

// Drain stops admission and waits for in-flight jobs. Queued jobs still
// run — they were accepted, and accepted work completes. If ctx expires
// first, running simulations are cooperatively cancelled (they unwind
// at the next cancellation point, auditor-consistent) and Drain returns
// an error once they have.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	if dl, ok := ctx.Deadline(); ok && m.drainDeadline.IsZero() {
		// Remembered for Retry-After: by this time the jobs have either
		// finished or been cancelled, so a shed client retrying then
		// meets whatever replaces this process.
		m.drainDeadline = dl
	}
	queued := len(m.queue)
	m.mu.Unlock()
	m.log.Info("drain started", "running", m.running.Load(), "queued", queued)

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.log.Info("drain complete")
		return nil
	case <-ctx.Done():
		m.baseCancel(fmt.Errorf("serve: drain deadline: %w", context.Cause(ctx)))
		<-done
		m.log.Warn("drain deadline exceeded, in-flight jobs cancelled")
		return fmt.Errorf("serve: drain deadline exceeded, in-flight jobs cancelled")
	}
}

// session is one pool worker: it pops jobs until the queue closes
// (drain) or the base context dies, running each with panic isolation
// so a crashing simulation takes down its job, not the daemon.
func (m *Manager) session(id int) {
	defer m.wg.Done()
	for {
		select {
		case <-m.baseCtx.Done():
			// Hard shutdown: mark whatever is still queued cancelled.
			for {
				select {
				case job, ok := <-m.queue:
					if !ok {
						return
					}
					if job.transition(StateCancelled, "serve: daemon shutdown") {
						m.count("serve.jobs.cancelled")
						job.endSpans(errors.New("serve: daemon shutdown"))
						m.persist(job)
						m.removeCheckpoint(job)
						m.publishState(job)
					}
				default:
					return
				}
			}
		case job, ok := <-m.queue:
			if !ok {
				return
			}
			m.runJob(id, job)
		}
	}
}

// runJob executes one job end to end on this session.
func (m *Manager) runJob(session int, job *Job) {
	if job.State().Terminal() {
		return // cancelled while queued
	}
	ctx := job.runCtx
	timeout := m.cfg.JobTimeout
	if t := time.Duration(job.Request.Timeout); t > 0 && (timeout == 0 || t < timeout) {
		timeout = t
	}
	if timeout > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, timeout)
		defer cancelT()
	}

	// Chaos: pre-run latency and a mid-run cancellation timer.
	if chaos := m.cfg.Chaos; chaos != nil {
		if chaos.roll(chaos.LatencyP) {
			t := time.NewTimer(chaos.Latency)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
		if chaos.roll(chaos.CancelP) {
			t := time.AfterFunc(chaos.Latency/2+time.Millisecond, func() {
				job.cancel(errChaosCancel)
			})
			defer t.Stop()
		}
	}

	if !job.transition(StateRunning, "") {
		return
	}
	// The queue wait is over; the run span nests under the job span (the
	// session's cancellable ctx gains the job's scope + job span so grid
	// and machine spans started inside the harness land in this trace).
	job.queuedSpan.End()
	ctx = telemetry.WithSpan(telemetry.NewContext(ctx, job.scope), job.jobSpan)
	ctx, runSpan := telemetry.StartSpan(ctx, "run")
	runSpan.SetAttrs(telemetry.Int("session", int64(session)))
	job.runSpan = runSpan
	m.persist(job)

	// Durable jobs thread a per-job harness checkpoint: completed grid
	// cells are journaled under the job's id, so if this process dies
	// mid-run the restarted daemon resumes the job from its last
	// completed cells instead of recomputing the grid. Per-job (not the
	// package-global SetCheckpoint slot) because concurrent sessions
	// must not share resume state. A checkpoint that cannot be opened
	// degrades to a non-resumable run rather than failing the job.
	if m.store != nil {
		if ck, err := harness.OpenCheckpoint(m.store.CheckpointPath(job.ID)); err != nil {
			m.log.Warn("job checkpoint unavailable, run will not be resumable",
				"job", job.ID, "err", err)
		} else {
			if job.Restarts > 0 && ck.Loaded() > 0 {
				m.log.Info("job resuming from checkpoint",
					"job", job.ID, "trace", job.TraceID(), "cells", ck.Loaded())
			}
			ctx = harness.WithCheckpoint(ctx, ck)
			defer func() {
				if cerr := ck.Close(); cerr != nil {
					m.log.Warn("job checkpoint close failed", "job", job.ID, "err", cerr)
				}
			}()
		}
	}
	m.log.Info("job running",
		"job", job.ID, "trace", job.TraceID(), "session", session,
		"experiment", job.Request.Experiment, "restarts", job.Restarts)
	m.publishState(job)

	m.running.Add(1)
	start := time.Now()
	table, err, panicked := m.attempt(ctx, job)
	m.running.Add(-1)
	elapsed := time.Since(start)
	m.statsMu.Lock()
	m.stats.Observe("serve.job.seconds", elapsed.Seconds())
	m.statsMu.Unlock()

	switch {
	case panicked:
		m.count("serve.jobs.panicked")
		job.transition(StateFailed, err.Error())
		m.log.Error("job session panicked",
			"job", job.ID, "trace", job.TraceID(), "session", session, "err", err)
	case err != nil && (ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		m.count("serve.jobs.cancelled")
		job.transition(StateCancelled, err.Error())
		m.log.Info("job cancelled",
			"job", job.ID, "trace", job.TraceID(), "session", session,
			"elapsed", elapsed, "cause", err)
	case err != nil:
		m.count("serve.jobs.failed")
		job.transition(StateFailed, err.Error())
		m.log.Warn("job failed",
			"job", job.ID, "trace", job.TraceID(), "session", session,
			"elapsed", elapsed, "err", err)
	default:
		m.count("serve.jobs.done")
		job.setResult(table)
		m.log.Info("job done",
			"job", job.ID, "trace", job.TraceID(), "session", session,
			"elapsed", elapsed)
	}
	job.endSpans(err)
	// Journal the terminal snapshot (the record now carries the table or
	// error) and drop the cell checkpoint — a terminal job never resumes.
	m.persist(job)
	m.removeCheckpoint(job)
	m.publishState(job)
}

// attempt runs the job's simulation with panic isolation: a panic — a
// simulator bug or injected chaos — is contained into an error on this
// job and the session keeps serving.
func (m *Manager) attempt(ctx context.Context, job *Job) (table string, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("serve: session panic: %v", r)
		}
	}()
	if chaos := m.cfg.Chaos; chaos != nil && chaos.roll(chaos.PanicP) {
		panic("serve: chaos: injected session panic")
	}
	table, err = m.cfg.Run(ctx, job.Request)
	return table, err, false
}
