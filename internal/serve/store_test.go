package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func journalLines(t *testing.T, dir string) []JobRecord {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, storeJournal))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []JobRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec JobRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("journal line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestStoreReplayLastRecordWins pins the journal semantics: every append
// is a full snapshot, replay keeps the last record per job id in journal
// order, and reopening compacts the file to one line per job.
func TestStoreReplayLastRecordWins(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	st.Append(JobRecord{ID: "job-1", State: StateQueued, Submitted: base})
	st.Append(JobRecord{ID: "job-1", State: StateRunning, Submitted: base, Started: base.Add(time.Second)})
	st.Append(JobRecord{ID: "job-2", State: StateQueued, Submitted: base.Add(2 * time.Second)})
	st.Append(JobRecord{ID: "job-1", State: StateDone, Submitted: base, Table: "T1\n"})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(journalLines(t, dir)); got != 4 {
		t.Fatalf("journal holds %d lines before compaction, want 4", got)
	}

	st2 := openTestStore(t, dir)
	defer st2.Close()
	recs := st2.Records()
	if len(recs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(recs))
	}
	if recs[0].ID != "job-1" || recs[0].State != StateDone || recs[0].Table != "T1\n" {
		t.Fatalf("job-1 replayed as %+v, want the final done snapshot", recs[0])
	}
	if recs[1].ID != "job-2" || recs[1].State != StateQueued {
		t.Fatalf("job-2 replayed as %+v, want the queued snapshot", recs[1])
	}
	// Opening compacted the file: one line per job, journal order.
	lines := journalLines(t, dir)
	if len(lines) != 2 || lines[0].ID != "job-1" || lines[1].ID != "job-2" {
		t.Fatalf("compacted journal = %+v, want one line each for job-1, job-2", lines)
	}
}

// TestStoreTornTailAndCorruptLine pins crash tolerance: a SIGKILL
// mid-append leaves a line fragment that replay drops, and a corrupt
// full line stops replay at the last trustworthy record without failing
// the open.
func TestStoreTornTailAndCorruptLine(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	st.Append(JobRecord{ID: "job-1", State: StateDone, Table: "T\n"})
	st.Append(JobRecord{ID: "job-2", State: StateRunning})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, storeJournal)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"job-3","state":"ru`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	if st2.Len() != 2 {
		t.Fatalf("torn journal replayed %d jobs, want 2", st2.Len())
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	// Compaction dropped the fragment from disk.
	if lines := journalLines(t, dir); len(lines) != 2 {
		t.Fatalf("compacted torn journal holds %d lines, want 2", len(lines))
	}

	// A corrupt full line: replay keeps everything before it, nothing
	// after it.
	good, err := json.Marshal(JobRecord{ID: "job-9", State: StateDone})
	if err != nil {
		t.Fatal(err)
	}
	f, err = os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not json\n")
	f.Write(append(good, '\n'))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st3 := openTestStore(t, dir)
	defer st3.Close()
	if st3.Len() != 2 {
		t.Fatalf("corrupt journal replayed %d jobs, want 2 (job-9 postdates the corruption)", st3.Len())
	}
}

// TestStoreForgetCompactsAway pins that Forget + Compact shrink the
// journal on disk — the path the manager's retention eviction uses.
func TestStoreForgetCompactsAway(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	st.Append(JobRecord{ID: "job-1", State: StateDone})
	st.Append(JobRecord{ID: "job-2", State: StateDone})
	st.Forget("job-1")
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	// The store stays appendable after an in-place compaction.
	st.Append(JobRecord{ID: "job-3", State: StateQueued})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, dir)
	defer st2.Close()
	recs := st2.Records()
	if len(recs) != 2 || recs[0].ID != "job-2" || recs[1].ID != "job-3" {
		t.Fatalf("after forget+compact journal replays %+v, want job-2 and job-3", recs)
	}
}

// TestApplyRetention pins the load-time retention filter: terminal
// records age out or fall off the count bound, non-terminal records
// always survive.
func TestApplyRetention(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	recs := []JobRecord{
		{ID: "old", State: StateDone, Finished: now.Add(-2 * time.Hour)},
		{ID: "orphan", State: StateRunning},
		{ID: "mid", State: StateFailed, Finished: now.Add(-30 * time.Minute)},
		{ID: "new", State: StateDone, Finished: now.Add(-time.Minute)},
	}
	out := applyRetention(recs, now, time.Hour, 0)
	if len(out) != 3 || out[0].ID != "orphan" || out[1].ID != "mid" || out[2].ID != "new" {
		t.Fatalf("age filter kept %+v, want orphan, mid, new", out)
	}
	out = applyRetention(recs, now, 0, 1)
	if len(out) != 2 || out[0].ID != "orphan" || out[1].ID != "new" {
		t.Fatalf("count filter kept %+v, want orphan and the newest terminal", out)
	}
	out = applyRetention(recs, now, -1, -1)
	if len(out) != 4 {
		t.Fatalf("disabled retention dropped records: %+v", out)
	}
}

// TestManagerRestartResumesOrphans is the tentpole's unit acceptance: a
// daemon dies (journal frozen mid-flight) with one job running and one
// queued; a new manager over the same state dir resubmits both under
// their original ids, submit times and trace ids, bumps Restarts, runs
// them to completion, and keeps the id counter monotonic past the
// recovered ids.
func TestManagerRestartResumesOrphans(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	block := make(chan struct{})
	m1 := NewManager(Config{
		Sessions: 1, RatePerSec: -1, Store: st,
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			select {
			case <-block:
				return "first life\n", nil
			case <-ctx.Done():
				return "", context.Cause(ctx)
			}
		},
	})
	j1, err := m1.Submit("c1", JobRequest{Experiment: "e1"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m1.Submit("c1", JobRequest{Experiment: "e2", Horizon: 500})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j1.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job-1 never started (state %s)", j1.State())
		}
		time.Sleep(time.Millisecond)
	}
	// The running job's checkpoint file exists while it runs.
	if _, err := os.Stat(st.CheckpointPath(j1.ID)); err != nil {
		t.Fatalf("running job has no checkpoint file: %v", err)
	}
	wantTrace1, wantTrace2 := j1.TraceID(), j2.TraceID()
	wantSubmitted := j1.View().Submitted

	// "Crash": freeze the journal as the dead process left it — job-1
	// running, job-2 queued — then let the old manager unwind (its
	// post-mortem appends hit the closed file and are dropped).
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	close(block)
	m1.Drain(context.Background())

	st2 := openTestStore(t, dir)
	m2 := NewManager(Config{
		Sessions: 1, RatePerSec: -1, Store: st2,
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			return "second life " + req.Experiment + "\n", nil
		},
	})
	defer func() {
		m2.Drain(context.Background())
		st2.Close()
	}()
	if replayed, resumed := m2.Recovered(); replayed != 0 || resumed != 2 {
		t.Fatalf("recovered replayed=%d resumed=%d, want 0 and 2", replayed, resumed)
	}
	r1, err := m2.Get(j1.ID)
	if err != nil {
		t.Fatalf("job %s lost across restart: %v", j1.ID, err)
	}
	r2, err := m2.Get(j2.ID)
	if err != nil {
		t.Fatalf("job %s lost across restart: %v", j2.ID, err)
	}
	if r1.Restarts != 1 || r2.Restarts != 1 {
		t.Fatalf("restarts = %d, %d, want 1, 1", r1.Restarts, r2.Restarts)
	}
	if r1.TraceID() != wantTrace1 || r2.TraceID() != wantTrace2 {
		t.Fatalf("trace ids changed across restart: %s -> %s, %s -> %s",
			wantTrace1, r1.TraceID(), wantTrace2, r2.TraceID())
	}
	if !r1.View().Submitted.Equal(wantSubmitted) {
		t.Fatalf("submit time changed across restart: %v -> %v", wantSubmitted, r1.View().Submitted)
	}
	if v := waitTerminal(t, r1); v.State != StateDone || v.Restarts != 1 {
		t.Fatalf("resumed job-1 ended %s (restarts %d), want done", v.State, v.Restarts)
	}
	if v := waitTerminal(t, r2); v.State != StateDone {
		t.Fatalf("resumed job-2 ended %s, want done", v.State)
	}
	if tbl, ok := r2.Result(); !ok || tbl != "second life e2\n" {
		t.Fatalf("resumed job-2 table %q, want the resumed run's output", tbl)
	}
	// Terminal jobs drop their checkpoint files (async after Done).
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(st2.CheckpointPath(j1.ID)); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal job's checkpoint file was not removed")
		}
		time.Sleep(time.Millisecond)
	}
	// The id namespace stays monotonic: recovered ids are never re-minted.
	j3, err := m2.Submit("c1", JobRequest{Experiment: "e1"})
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID != "job-3" {
		t.Fatalf("post-restart submission minted %s, want job-3", j3.ID)
	}
}

// TestManagerReplaysTerminalJobs pins the other half of recovery: jobs
// that finished before the restart reappear as inert registry entries —
// same id, table, error, trace id — so clients polling across the
// restart read identical results.
func TestManagerReplaysTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	m1 := NewManager(Config{Sessions: 1, RatePerSec: -1, Store: st, Run: fakeRun(time.Millisecond)})
	j1, err := m1.Submit("c1", JobRequest{Experiment: "e3"})
	if err != nil {
		t.Fatal(err)
	}
	want := waitTerminal(t, j1)
	tbl, ok := j1.Result()
	if !ok {
		t.Fatal("job did not produce a table")
	}
	m1.Drain(context.Background())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	m2 := NewManager(Config{Sessions: 1, RatePerSec: -1, Store: st2, Run: fakeRun(time.Millisecond)})
	defer func() {
		m2.Drain(context.Background())
		st2.Close()
	}()
	if replayed, resumed := m2.Recovered(); replayed != 1 || resumed != 0 {
		t.Fatalf("recovered replayed=%d resumed=%d, want 1 and 0", replayed, resumed)
	}
	r1, err := m2.Get(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := r1.View()
	if got.State != StateDone || got.TraceID != want.TraceID || !got.Submitted.Equal(want.Submitted) {
		t.Fatalf("replayed view %+v differs from pre-restart %+v", got, want)
	}
	if rtbl, ok := r1.Result(); !ok || rtbl != tbl {
		t.Fatalf("replayed table %q, want %q", rtbl, tbl)
	}
	select {
	case <-r1.Done():
	default:
		t.Fatal("replayed terminal job's Done channel is not closed")
	}
}

// TestRetentionBoundsRegistry is the unbounded-registry regression test,
// mirroring TestLimiterEvictsIdleBuckets: the jobs map grows with
// submissions, then the retention sweep shrinks it back to the
// configured bound (and empties it entirely once everything ages out),
// never touching live jobs, while the store forgets evicted ids.
func TestRetentionBoundsRegistry(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	defer st.Close()
	m := NewManager(Config{
		Sessions: 2, QueueDepth: 64, RatePerSec: -1,
		RetentionAge: time.Hour, RetentionMax: 8,
		Store: st, Run: fakeRun(0),
	})
	defer m.Drain(context.Background())
	const n = 30
	for i := 0; i < n; i++ {
		job, err := m.Submit("c1", JobRequest{Experiment: "e1"})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, job)
	}
	m.mu.Lock()
	grown := len(m.jobs)
	m.mu.Unlock()
	if grown != n {
		t.Fatalf("registry holds %d jobs, want %d", grown, n)
	}

	// A live job must survive every sweep.
	block := make(chan struct{})
	defer close(block)
	m.cfg.Run = func(ctx context.Context, req JobRequest) (string, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return "ok\n", nil
	}
	live, err := m.Submit("c1", JobRequest{Experiment: "e2"})
	if err != nil {
		t.Fatal(err)
	}

	// Count bound: the sweep shrinks the map to RetentionMax terminal
	// jobs (+ the live one), evicting oldest-finished first.
	m.mu.Lock()
	m.sweepRetentionLocked(true)
	afterCount := len(m.jobs)
	evicted := m.evicted
	m.mu.Unlock()
	if afterCount != 8+1 {
		t.Fatalf("registry holds %d jobs after count sweep, want 9 (8 retained + 1 live)", afterCount)
	}
	if evicted != n-8 {
		t.Fatalf("evicted counter %d, want %d", evicted, n-8)
	}
	if st.Len() != 8+1 {
		t.Fatalf("store retains %d jobs after sweep, want 9", st.Len())
	}
	if _, err := m.Get("job-1"); err == nil {
		t.Fatal("oldest job survived the count bound")
	}

	// Age bound: once everything terminal is older than RetentionAge,
	// the sweep empties the registry down to the live job.
	m.now = func() time.Time { return time.Now().Add(48 * time.Hour) }
	m.mu.Lock()
	m.sweepRetentionLocked(true)
	afterAge := len(m.jobs)
	m.mu.Unlock()
	if afterAge != 1 {
		t.Fatalf("registry holds %d jobs after age sweep, want only the live job", afterAge)
	}
	if live.State().Terminal() {
		t.Fatal("live job was evicted")
	}
	if _, err := m.Get(live.ID); err != nil {
		t.Fatal("live job missing from registry after sweeps")
	}
}

// TestQueueFullShedLeavesBucketUntouched is the double-penalty
// regression test: a submission shed for queue depth (or draining) must
// not spend the client's rate-limit token — previously the limiter ran
// first, so a client retrying after a 429 met a poorer bucket than it
// deserved.
func TestQueueFullShedLeavesBucketUntouched(t *testing.T) {
	block := make(chan struct{})
	m := NewManager(Config{
		Sessions: 1, QueueDepth: 1, RatePerSec: 1, Burst: 5,
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return "ok\n", nil
		},
	})
	defer func() {
		close(block)
		m.Drain(context.Background())
	}()
	// Freeze limiter time so refill cannot mask a spent token.
	frozen := time.Unix(1000, 0)
	m.limiter.now = func() time.Time { return frozen }

	tokens := func(client string) (float64, bool) {
		m.limiter.mu.Lock()
		defer m.limiter.mu.Unlock()
		b, ok := m.limiter.buckets[client]
		if !ok {
			return 0, false
		}
		return b.tokens, true
	}

	// The victim charges one token on a legitimate accept...
	victim, err := m.Submit("victim", JobRequest{Experiment: "e1"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for victim.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("victim job never started (state %s)", victim.State())
		}
		time.Sleep(time.Millisecond)
	}
	if got, ok := tokens("victim"); !ok || got != 4 {
		t.Fatalf("victim bucket after accept = %v (present %v), want 4 tokens", got, ok)
	}
	// ...a filler tops off the queue...
	if _, err := m.Submit("filler", JobRequest{Experiment: "e1"}); err != nil {
		t.Fatal(err)
	}
	// ...and the queue-full shed leaves the victim's bucket exactly
	// where it was.
	_, err = m.Submit("victim", JobRequest{Experiment: "e1"})
	oe, ok := err.(*OverloadError)
	if !ok || oe.Reason != "queue full" {
		t.Fatalf("want queue-full overload error, got %v", err)
	}
	if got, ok := tokens("victim"); !ok || got != 4 {
		t.Fatalf("queue-full shed moved the victim bucket to %v (present %v), want 4 tokens", got, ok)
	}
	// A client never admitted gets no bucket at all from a shed.
	if _, err := m.Submit("stranger", JobRequest{Experiment: "e1"}); err == nil {
		t.Fatal("queue-full submission unexpectedly accepted")
	}
	if _, ok := tokens("stranger"); ok {
		t.Fatal("queue-full shed minted a bucket for a never-admitted client")
	}

	// Draining sheds likewise never reach the limiter.
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	if _, err := m.Submit("victim", JobRequest{Experiment: "e1"}); err != ErrDraining {
		t.Fatalf("draining submit: want ErrDraining, got %v", err)
	}
	if got, ok := tokens("victim"); !ok || got != 4 {
		t.Fatalf("draining shed moved the victim bucket to %v (present %v), want 4 tokens", got, ok)
	}
	m.mu.Lock()
	m.draining = false
	m.mu.Unlock()
}

// TestJobsSortedNewestFirst pins Manager.Jobs ordering after the
// bubble-sort replacement: newest submission first, id as tie-break,
// bounded by max.
func TestJobsSortedNewestFirst(t *testing.T) {
	m := NewManager(Config{Sessions: 1, RatePerSec: -1, Run: fakeRun(0)})
	defer m.Drain(context.Background())
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	m.mu.Lock()
	for i := 1; i <= 6; i++ {
		id := fmt.Sprintf("job-%d", i)
		// Pairs share a submit time to exercise the id tie-break.
		m.jobs[id] = replayedJob(JobRecord{
			ID: id, State: StateDone,
			Submitted: base.Add(time.Duration(i/2) * time.Minute),
		})
	}
	m.mu.Unlock()
	views := m.Jobs(0)
	if len(views) != 6 {
		t.Fatalf("Jobs returned %d views, want 6", len(views))
	}
	for i := 1; i < len(views); i++ {
		prev, cur := views[i-1], views[i]
		if cur.Submitted.After(prev.Submitted) {
			t.Fatalf("views[%d] %s newer than views[%d] %s", i, cur.ID, i-1, prev.ID)
		}
		if cur.Submitted.Equal(prev.Submitted) && cur.ID > prev.ID {
			t.Fatalf("tie at %v not broken by id desc: %s before %s", cur.Submitted, prev.ID, cur.ID)
		}
	}
	if got := m.Jobs(2); len(got) != 2 || got[0].ID != "job-6" {
		t.Fatalf("Jobs(2) = %+v, want the 2 newest led by job-6", got)
	}
}
