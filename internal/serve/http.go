package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hammertime/internal/obs"
	"hammertime/internal/telemetry"
)

// The HTTP/JSON surface of hammerd. Everything is plain net/http over
// the Manager — submit, status, result, cancel, plus the operational
// trio (healthz, readyz, metrics):
//
//	POST   /v1/jobs             {"experiment":"e1","horizon":400000}  -> 202 JobView (carries trace_id)
//	GET    /v1/jobs             -> {"jobs":[JobView...]} (newest first)
//	GET    /v1/jobs/{id}        -> JobView
//	GET    /v1/jobs/{id}/result -> the rendered table (text/plain)
//	GET    /v1/jobs/{id}/events -> live SSE stream: state transitions,
//	                               per-cell completions, progress
//	                               (done/total, events/sec, ETA), and —
//	                               when the job was submitted with
//	                               "events" — raw simulator events
//	GET    /v1/jobs/{id}/trace  -> the job's span trace as a Chrome
//	                               trace (load in Perfetto);
//	                               ?format=jsonl for span-per-line JSON
//	DELETE /v1/jobs/{id}        -> cancels; 202 JobView
//	GET    /healthz             -> 200 while the daemon lives
//	GET    /readyz              -> 200 accepting, 503 draining
//	GET    /metrics             -> server + job counters: JSON by
//	                               default, Prometheus text exposition
//	                               when Accept mentions text/plain or
//	                               openmetrics
//
// Admission errors are typed: 429 + Retry-After for a full queue or an
// over-rate client, 503 + Retry-After while draining — every shed path
// derives its Retry-After from measured state (queue drain rate, token
// refill, drain deadline). Clients are keyed by remote address; the
// X-Hammertime-Client header overrides it only when the daemon was
// started with Config.TrustClientHeader (the header is unauthenticated).
//
// Every response passes through the instrumentation middleware: an
// access log line (method, route, status, latency, client) on the
// manager's logger and a per-route latency histogram + request counter
// that surface in /metrics as serve_http_seconds / serve_http_requests.

// NewHandler builds the daemon's HTTP handler over m.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
			return
		}
		job, err := m.Submit(m.clientKey(r), req)
		if err != nil {
			m.writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.View())
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		max := 0
		if v := r.URL.Query().Get("max"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				max = n
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.Jobs(max)})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job.View())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		table, ok := job.Result()
		if !ok {
			v := job.View()
			if v.State.Terminal() {
				httpError(w, http.StatusConflict,
					fmt.Errorf("serve: job %s %s: %s", job.ID, v.State, v.Error))
				return
			}
			httpError(w, http.StatusConflict,
				fmt.Errorf("serve: job %s is %s; poll GET /v1/jobs/%s", job.ID, v.State, job.ID))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, table)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		serveEvents(w, r, job)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if job.scope == nil || job.scope.Tracer == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("serve: job %s has no trace", job.ID))
			return
		}
		spans := job.scope.Tracer.Snapshot()
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			j := obs.NewJSONL(w)
			telemetry.ExportJSONL(j, spans)
			_ = j.Flush()
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		ct := obs.NewChromeTrace(w)
		ct.SetJob(job.ID)
		telemetry.ExportChrome(ct, spans)
		_ = ct.Flush()
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.View())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !m.Ready() {
			w.Header().Set("Retry-After", retrySeconds(m.DrainRetryAfter()))
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// Content negotiation: JSON stays the default (existing tooling
		// parses it); Prometheus scrapers send Accept: text/plain (or an
		// openmetrics type) and get the text exposition format.
		if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/plain") ||
			strings.Contains(accept, "openmetrics") {
			w.Header().Set("Content-Type", telemetry.PromContentType)
			telemetry.WritePrometheus(w, m.Metrics())
			return
		}
		writeJSON(w, http.StatusOK, m.Metrics())
	})
	return instrument(m, mux)
}

// instrument wraps the mux with access logging and per-route metrics.
// The route label is the mux pattern (not the raw path), so /metrics
// cardinality stays bounded no matter what clients request; the
// pattern is resolved with mux.Handler before serving because
// r.Pattern is only set on the request the mux itself dispatches.
func instrument(m *Manager, mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		sw := &statusWriter{ResponseWriter: w}
		mux.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		m.observeHTTP(route, sw.Status(), elapsed.Seconds())
		m.log.Info("http",
			"method", r.Method, "path", r.URL.Path, "route", route,
			"status", sw.Status(), "latency", elapsed, "client", m.clientKey(r))
	})
}

// statusWriter captures the response status for the access log and
// metrics. It forwards Flush so streaming handlers (the SSE stream)
// keep working through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Status returns the written status (200 if the handler never wrote one).
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// Flush forwards to the underlying writer so SSE responses stream.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// sseKeepalive is the comment-ping interval on idle event streams.
var sseKeepalive = 15 * time.Second

// serveEvents streams the job's hub over Server-Sent Events. Each hub
// record becomes one SSE event (`event:` = record type, `data:` = the
// JSON payload); ring overflow is reported as a "drop" event with the
// count rather than silently losing history; an initial and a final
// "state" event bracket the stream so a late subscriber still sees
// where the job stands. The stream ends when the job reaches a
// terminal state or the client disconnects.
func serveEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok || job.scope == nil || job.scope.Hub == nil {
		httpError(w, http.StatusInternalServerError,
			errors.New("serve: event stream unsupported"))
		return
	}
	sub := job.scope.Hub.Subscribe(256)
	defer job.scope.Hub.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	writeSSE(w, "state", job.View())
	flusher.Flush()

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			// Final drain: everything the run published lands in the ring
			// before the terminal transition closes Done.
			drainSSE(w, sub)
			writeSSE(w, "state", job.View())
			flusher.Flush()
			return
		case <-sub.Notify():
			drainSSE(w, sub)
			flusher.Flush()
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		}
	}
}

// drainSSE empties the subscriber's ring onto the wire.
func drainSSE(w http.ResponseWriter, sub *telemetry.Subscriber) {
	msgs, dropped := sub.Take()
	if dropped > 0 {
		writeSSE(w, "drop", map[string]uint64{"dropped": dropped})
	}
	for _, msg := range msgs {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", msg.Type, msg.Data)
	}
}

// writeSSE marshals v as one SSE event.
func writeSSE(w http.ResponseWriter, typ string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", typ, b)
}

// clientKey identifies the submitting client for rate limiting: the
// X-Hammertime-Client header when the daemon was configured to trust it
// (it is unauthenticated — see Config.TrustClientHeader), else the
// remote host.
func (m *Manager) clientKey(r *http.Request) string {
	if m.cfg.TrustClientHeader {
		if c := r.Header.Get("X-Hammertime-Client"); c != "" {
			return c
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retrySeconds renders a Retry-After duration as whole seconds, never
// below one — a zero or negative header is useless to a client.
func retrySeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeSubmitError maps Submit's typed errors onto status codes. Every
// shed path carries a Retry-After derived from measured state — queue
// drain rate, client refill time, or drain deadline — not a constant.
func (m *Manager) writeSubmitError(w http.ResponseWriter, err error) {
	var over *OverloadError
	switch {
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", retrySeconds(m.DrainRetryAfter()))
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &over):
		w.Header().Set("Retry-After", retrySeconds(over.RetryAfter))
		httpError(w, http.StatusTooManyRequests, err)
	default:
		httpError(w, http.StatusBadRequest, err)
	}
}

// httpError renders an error as {"error": "..."} with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
