package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// The HTTP/JSON surface of hammerd. Everything is plain net/http over
// the Manager — submit, status, result, cancel, plus the operational
// trio (healthz, readyz, metrics):
//
//	POST   /v1/jobs             {"experiment":"e1","horizon":400000}  -> 202 JobView
//	GET    /v1/jobs             -> {"jobs":[JobView...]} (newest first)
//	GET    /v1/jobs/{id}        -> JobView
//	GET    /v1/jobs/{id}/result -> the rendered table (text/plain)
//	DELETE /v1/jobs/{id}        -> cancels; 202 JobView
//	GET    /healthz             -> 200 while the daemon lives
//	GET    /readyz              -> 200 accepting, 503 draining
//	GET    /metrics             -> server + job counters (JSON)
//
// Admission errors are typed: 429 + Retry-After for a full queue or an
// over-rate client, 503 + Retry-After while draining. Clients are
// keyed by the X-Hammertime-Client header when present, else by remote
// address, so smoke tests and multi-tenant callers can pin identities.

// NewHandler builds the daemon's HTTP handler over m.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
			return
		}
		job, err := m.Submit(clientKey(r), req)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.View())
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		max := 0
		if v := r.URL.Query().Get("max"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				max = n
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.Jobs(max)})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job.View())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		table, ok := job.Result()
		if !ok {
			v := job.View()
			if v.State.Terminal() {
				httpError(w, http.StatusConflict,
					fmt.Errorf("serve: job %s %s: %s", job.ID, v.State, v.Error))
				return
			}
			httpError(w, http.StatusConflict,
				fmt.Errorf("serve: job %s is %s; poll GET /v1/jobs/%s", job.ID, v.State, job.ID))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, table)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.View())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !m.Ready() {
			w.Header().Set("Retry-After", "5")
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Metrics())
	})
	return mux
}

// clientKey identifies the submitting client for rate limiting.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Hammertime-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// writeSubmitError maps Submit's typed errors onto status codes.
func writeSubmitError(w http.ResponseWriter, err error) {
	var over *OverloadError
	switch {
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "30")
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &over):
		secs := int(over.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests, err)
	default:
		httpError(w, http.StatusBadRequest, err)
	}
}

// httpError renders an error as {"error": "..."} with the given status.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
