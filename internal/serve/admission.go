package serve

import (
	"sync"
	"time"
)

// Admission control: the daemon sheds load instead of queueing without
// bound. Two independent gates run in front of the session pool —
//
//   - a bounded job queue: submissions beyond QueueDepth are rejected
//     with 429 and a Retry-After estimated from the queue's drain rate,
//     so a saturated daemon pushes back instead of accumulating
//     hours of simulation debt;
//
//   - per-client token buckets: each client (remote address or
//     X-Hammertime-Client header) refills at RatePerSec up to Burst
//     tokens, so one chatty client cannot starve the rest.
//
// Both reject early, before any simulation state is allocated.

// bucket is one client's token bucket. Tokens are fractional so slow
// refill rates (e.g. 0.5/s) work.
type bucket struct {
	tokens float64
	last   time.Time
}

// limiter holds the per-client buckets. The map is kept bounded by the
// sweep in allow: a bucket idle long enough that refill would fill it
// back to burst is semantically identical to an absent one (a fresh
// bucket starts full), so it is deleted rather than retained — without
// this, every client address ever seen would stay resident for the
// daemon's lifetime.
type limiter struct {
	rate       float64       // tokens per second
	burst      float64       // bucket capacity
	sweepEvery time.Duration // eviction cadence

	mu        sync.Mutex
	buckets   map[string]*bucket
	lastSweep time.Time
	now       func() time.Time // test hook
}

// newLimiter builds a limiter; rate <= 0 disables limiting.
func newLimiter(rate float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	l := &limiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
	if rate > 0 {
		// One full refill is the natural eviction period: sweeping more
		// often finds nothing evictable that matters, less often just
		// delays reclaim.
		l.sweepEvery = time.Duration(l.burst / rate * float64(time.Second))
		if l.sweepEvery < time.Second {
			l.sweepEvery = time.Second
		}
	}
	return l
}

// sweep deletes buckets that have idled back to full. Caller holds l.mu;
// now is the current limiter time.
func (l *limiter) sweep(now time.Time) {
	if now.Sub(l.lastSweep) < l.sweepEvery {
		return
	}
	l.lastSweep = now
	for client, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, client)
		}
	}
}

// allow consumes one token from client's bucket. When the bucket is
// empty it reports false plus how long until the next token accrues —
// the Retry-After the HTTP layer sends back.
func (l *limiter) allow(client string) (bool, time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	if l.lastSweep.IsZero() {
		l.lastSweep = now
	}
	l.sweep(now)
	b, ok := l.buckets[client]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}
