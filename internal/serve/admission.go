package serve

import (
	"sync"
	"time"
)

// Admission control: the daemon sheds load instead of queueing without
// bound. Two independent gates run in front of the session pool —
//
//   - a bounded job queue: submissions beyond QueueDepth are rejected
//     with 429 and a Retry-After estimated from the queue's drain rate,
//     so a saturated daemon pushes back instead of accumulating
//     hours of simulation debt;
//
//   - per-client token buckets: each client (remote address or
//     X-Hammertime-Client header) refills at RatePerSec up to Burst
//     tokens, so one chatty client cannot starve the rest.
//
// Both reject early, before any simulation state is allocated.

// bucket is one client's token bucket. Tokens are fractional so slow
// refill rates (e.g. 0.5/s) work.
type bucket struct {
	tokens float64
	last   time.Time
}

// limiter holds the per-client buckets.
type limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // test hook
}

// newLimiter builds a limiter; rate <= 0 disables limiting.
func newLimiter(rate float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow consumes one token from client's bucket. When the bucket is
// empty it reports false plus how long until the next token accrues —
// the Retry-After the HTTP layer sends back.
func (l *limiter) allow(client string) (bool, time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[client]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}
