package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// The persistent job store behind hammerd's -state-dir. The paper's
// evaluation grids are minutes-long batch jobs; a daemon that loses
// every accepted job on a crash forces clients to resubmit and the
// simulator to recompute. The store makes the registry durable with the
// same machinery the harness already trusts for cells:
//
//   - jobs.jsonl is an append-only journal of job snapshots. Every
//     lifecycle transition (queued, running, done/failed/cancelled)
//     appends one full JobRecord line, so the last record per job id is
//     the job's state at the instant the daemon died. Appends are one
//     write() each — a SIGKILL loses at most the in-flight line, and
//     the loader trims a torn tail exactly like harness.OpenCheckpoint.
//
//   - checkpoints/<job-id>.ckpt is the job's harness checkpoint
//     (FNV-keyed JSONL of completed grid cells), threaded into the
//     job's run via harness.WithCheckpoint. A job found "running" or
//     "queued" at startup is an orphan of the previous process: the
//     manager resubmits it under the same id and trace, and the grid
//     restores every cell the dead process completed — the resumed
//     table is byte-identical to an uninterrupted run because restored
//     cells are exact JSON round trips (see DESIGN.md, "Durable jobs").
//
// The journal is compacted at open (one surviving record per job,
// oldest first) so it stays proportional to the registry rather than to
// the daemon's lifetime submission count; the in-memory registry itself
// is bounded by the manager's retention sweep.

// JobRecord is the journaled snapshot of one job — everything needed to
// rebuild its registry entry (terminal jobs) or resubmit it (orphans).
type JobRecord struct {
	ID        string     `json:"id"`
	Client    string     `json:"client,omitempty"`
	Request   JobRequest `json:"request"`
	State     JobState   `json:"state"`
	TraceID   string     `json:"trace_id,omitempty"`
	Restarts  int        `json:"restarts,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   time.Time  `json:"started,omitempty"`
	Finished  time.Time  `json:"finished,omitempty"`
	Table     string     `json:"table,omitempty"`
	Error     string     `json:"error,omitempty"`
}

// Store owns the journal file and the checkpoint directory. Safe for
// concurrent use: sessions journal transitions while HTTP handlers
// submit.
type Store struct {
	dir string

	mu    sync.Mutex
	f     *os.File
	err   error // sticky: first append failure
	last  map[string]JobRecord
	order []string // job ids by first appearance (journal order)
}

// storeJournal is the journal's file name inside the state dir.
const storeJournal = "jobs.jsonl"

// OpenStore opens (creating if needed) the state directory, replays the
// journal, and compacts it to one line per job. The returned store's
// Records reflect the previous process's registry at the moment it
// died; a torn final line — the signature of a SIGKILL mid-append — is
// dropped, and any line after the first corrupt one is ignored.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "checkpoints"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, last: make(map[string]JobRecord)}
	path := filepath.Join(dir, storeJournal)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			// EOF with a fragment: a write died mid-line. The fragment is
			// debris of the killed process; compaction below drops it.
			break
		}
		var rec JobRecord
		if json.Unmarshal([]byte(line), &rec) != nil || rec.ID == "" {
			// First corrupt full line: stop replaying. Later lines may
			// postdate the corruption, but a journal that lies once cannot
			// be trusted to order what follows.
			break
		}
		if _, seen := s.last[rec.ID]; !seen {
			s.order = append(s.order, rec.ID)
		}
		s.last[rec.ID] = rec
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := s.compact(path); err != nil {
		return nil, err
	}
	return s, nil
}

// compact rewrites the journal as one line per surviving job and
// reopens it for appending. Write-to-temp + rename keeps a crash during
// compaction from losing the old journal.
func (s *Store) compact(path string) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, id := range s.order {
		line, err := json.Marshal(s.last[id])
		if err != nil {
			f.Close()
			return fmt.Errorf("store: compact %s: %w", id, err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	s.f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Compact rewrites the journal to the current in-memory view (one line
// per surviving job) — the manager calls this after recovery applies
// retention, so jobs evicted by Forget actually leave the disk instead
// of being re-filtered at every restart forever.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
		s.f = nil
	}
	return s.compact(filepath.Join(s.dir, storeJournal))
}

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of distinct jobs in the journal.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.last)
}

// Records returns the last journaled record of every job, in journal
// (submission) order.
func (s *Store) Records() []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobRecord, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.last[id])
	}
	return out
}

// Append journals one job snapshot. Each record is a single write of a
// full line, so concurrent appends never interleave and a kill tears at
// most the final line. Write errors are sticky and surfaced by Err —
// the in-memory view stays consistent regardless, so the running daemon
// keeps serving; only durability across the next restart is lost.
func (s *Store) Append(rec JobRecord) {
	line, err := json.Marshal(rec)
	if err != nil {
		s.fail(fmt.Errorf("store: job %s: %w", rec.ID, err))
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.last[rec.ID]; !seen {
		s.order = append(s.order, rec.ID)
	}
	s.last[rec.ID] = rec
	if s.f == nil || s.err != nil {
		return
	}
	if _, err := s.f.Write(line); err != nil {
		s.err = fmt.Errorf("store: job %s: %w", rec.ID, err)
	}
}

// Forget drops a job from the store's in-memory view so the next
// compaction (at restart) omits it. The manager's retention sweep calls
// this alongside registry eviction; nothing is rewritten now — the
// journal stays append-only while the daemon lives.
func (s *Store) Forget(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.last[id]; !ok {
		return
	}
	delete(s.last, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// fail records the first append failure.
func (s *Store) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// Err returns the first append failure, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close closes the journal, reporting the sticky append error first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	first := s.err
	if s.f != nil {
		if err := s.f.Close(); err != nil && first == nil {
			first = err
		}
		s.f = nil
	}
	return first
}

// CheckpointPath returns the per-job harness checkpoint path. Job ids
// are daemon-minted ("job-N"), never client input, so they are safe as
// file names.
func (s *Store) CheckpointPath(jobID string) string {
	return filepath.Join(s.dir, "checkpoints", jobID+".ckpt")
}

// RemoveCheckpoint deletes a job's checkpoint file (missing is fine):
// a terminal job never resumes, so its cell-level state is dead weight.
func (s *Store) RemoveCheckpoint(jobID string) {
	_ = os.Remove(s.CheckpointPath(jobID))
}

// SweepCheckpoints removes checkpoint files whose job id is not in
// keep — debris of jobs that reached a terminal state (or were evicted)
// without getting to delete their checkpoint before the process died.
func (s *Store) SweepCheckpoints(keep map[string]bool) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "checkpoints"))
	if err != nil {
		return
	}
	for _, e := range entries {
		id := strings.TrimSuffix(e.Name(), ".ckpt")
		if id == e.Name() || keep[id] {
			continue
		}
		_ = os.Remove(filepath.Join(s.dir, "checkpoints", e.Name()))
	}
}

// applyRetention filters terminal records the same way the manager's
// in-memory sweep does — drop those finished before the age cutoff,
// then the oldest beyond the count bound — so a restart does not
// resurrect jobs the running daemon would already have evicted.
// Non-terminal records (the orphans to resume) always survive. age or
// max <= 0 disables that bound. Returns the surviving records in
// journal order.
func applyRetention(recs []JobRecord, now time.Time, age time.Duration, max int) []JobRecord {
	type aged struct {
		idx      int
		finished time.Time
	}
	var terminal []aged
	drop := make(map[int]bool)
	for i, rec := range recs {
		if !rec.State.Terminal() {
			continue
		}
		if age > 0 && now.Sub(rec.Finished) > age {
			drop[i] = true
			continue
		}
		terminal = append(terminal, aged{i, rec.Finished})
	}
	if max > 0 && len(terminal) > max {
		sort.Slice(terminal, func(a, b int) bool {
			return terminal[a].finished.Before(terminal[b].finished)
		})
		for _, t := range terminal[:len(terminal)-max] {
			drop[t.idx] = true
		}
	}
	out := recs[:0:0]
	for i, rec := range recs {
		if !drop[i] {
			out = append(out, rec)
		}
	}
	return out
}
