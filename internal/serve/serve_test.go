package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hammertime/internal/sim"
)

// fakeRun builds a RunFunc that simulates `dur` of work, polling its
// context like a real harness run does.
func fakeRun(dur time.Duration) RunFunc {
	return func(ctx context.Context, req JobRequest) (string, error) {
		select {
		case <-ctx.Done():
			return "", context.Cause(ctx)
		case <-time.After(dur):
			return "table for " + req.Experiment + "\n", nil
		}
	}
}

func waitTerminal(t *testing.T, job *Job) JobView {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s never reached a terminal state (state %s)", job.ID, job.State())
	}
	return job.View()
}

func TestSubmitRunsJob(t *testing.T) {
	m := NewManager(Config{Sessions: 1, Run: fakeRun(5 * time.Millisecond)})
	defer m.Drain(context.Background())
	job, err := m.Submit("c1", JobRequest{Experiment: "e1", Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, job)
	if v.State != StateDone {
		t.Fatalf("want done, got %s (%s)", v.State, v.Error)
	}
	table, ok := job.Result()
	if !ok || table != "table for e1\n" {
		t.Fatalf("bad result %q ok=%v", table, ok)
	}
	if v.Started == nil || v.Finished == nil {
		t.Fatalf("timestamps missing: %+v", v)
	}
}

func TestSubmitValidatesExperiment(t *testing.T) {
	m := NewManager(Config{Run: fakeRun(0)})
	defer m.Drain(context.Background())
	if _, err := m.Submit("c1", JobRequest{Experiment: "e99"}); err == nil {
		t.Fatal("unknown experiment must be rejected")
	}
}

func TestQueueFullSheds(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	m := NewManager(Config{
		Sessions: 1, QueueDepth: 2, RatePerSec: -1,
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			once.Do(func() { close(started) })
			select {
			case <-block:
			case <-ctx.Done():
			}
			return "ok", nil
		},
	})
	defer func() { close(block); m.Drain(context.Background()) }()

	// One running (wait for the session to pick it up) + two queued fit;
	// the fourth must shed.
	if _, err := m.Submit("c1", JobRequest{Experiment: "e1"}); err != nil {
		t.Fatal(err)
	}
	<-started
	var last error
	accepted := 1
	for i := 0; i < 3; i++ {
		if _, err := m.Submit("c1", JobRequest{Experiment: "e1"}); err != nil {
			last = err
		} else {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("want 3 accepted (1 running + 2 queued), got %d", accepted)
	}
	var over *OverloadError
	if !errors.As(last, &over) || over.Reason != "queue full" || over.RetryAfter <= 0 {
		t.Fatalf("want queue-full OverloadError with Retry-After, got %v", last)
	}
}

func TestRateLimitPerClient(t *testing.T) {
	m := NewManager(Config{
		Sessions: 1, QueueDepth: 100, RatePerSec: 1, Burst: 2,
		Run: fakeRun(0),
	})
	defer m.Drain(context.Background())
	for i := 0; i < 2; i++ {
		if _, err := m.Submit("greedy", JobRequest{Experiment: "e1"}); err != nil {
			t.Fatalf("burst submission %d rejected: %v", i, err)
		}
	}
	_, err := m.Submit("greedy", JobRequest{Experiment: "e1"})
	var over *OverloadError
	if !errors.As(err, &over) || over.Reason != "client rate limit" {
		t.Fatalf("want rate-limit OverloadError, got %v", err)
	}
	// A different client has its own bucket.
	if _, err := m.Submit("patient", JobRequest{Experiment: "e1"}); err != nil {
		t.Fatalf("independent client throttled by another's bucket: %v", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	block := make(chan struct{})
	m := NewManager(Config{
		Sessions: 1, QueueDepth: 4, RatePerSec: -1,
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return "ok", nil
		},
	})
	defer func() { close(block); m.Drain(context.Background()) }()
	if _, err := m.Submit("c1", JobRequest{Experiment: "e1"}); err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit("c1", JobRequest{Experiment: "e2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, queued)
	if v.State != StateCancelled {
		t.Fatalf("want cancelled, got %s", v.State)
	}
}

func TestCancelRunningJobUnwinds(t *testing.T) {
	started := make(chan struct{})
	m := NewManager(Config{
		Sessions: 1, RatePerSec: -1,
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			close(started)
			<-ctx.Done()
			return "", context.Cause(ctx)
		},
	})
	defer m.Drain(context.Background())
	job, err := m.Submit("c1", JobRequest{Experiment: "e1"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, job)
	if v.State != StateCancelled {
		t.Fatalf("want cancelled, got %s (%s)", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "cancelled by client") {
		t.Fatalf("cancellation cause lost: %q", v.Error)
	}
}

func TestJobTimeout(t *testing.T) {
	m := NewManager(Config{
		Sessions: 1, RatePerSec: -1, JobTimeout: 20 * time.Millisecond,
		Run: fakeRun(10 * time.Second),
	})
	defer m.Drain(context.Background())
	job, err := m.Submit("c1", JobRequest{Experiment: "e1"})
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, job)
	if v.State != StateCancelled {
		t.Fatalf("deadline must cancel the job, got %s (%s)", v.State, v.Error)
	}
}

func TestPanicIsolation(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(Config{
		Sessions: 1, RatePerSec: -1,
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			if calls.Add(1) == 1 {
				panic("simulator bug")
			}
			return "recovered", nil
		},
	})
	defer m.Drain(context.Background())
	crash, err := m.Submit("c1", JobRequest{Experiment: "e1"})
	if err != nil {
		t.Fatal(err)
	}
	if v := waitTerminal(t, crash); v.State != StateFailed || !strings.Contains(v.Error, "panic") {
		t.Fatalf("want failed-with-panic, got %s (%s)", v.State, v.Error)
	}
	// The session survived the panic and serves the next job.
	next, err := m.Submit("c1", JobRequest{Experiment: "e1"})
	if err != nil {
		t.Fatal(err)
	}
	if v := waitTerminal(t, next); v.State != StateDone {
		t.Fatalf("session did not survive the panic: %s (%s)", v.State, v.Error)
	}
}

func TestDrainFinishesAcceptedWork(t *testing.T) {
	m := NewManager(Config{Sessions: 1, RatePerSec: -1, Run: fakeRun(30 * time.Millisecond)})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		job, err := m.Submit("c1", JobRequest{Experiment: "e1"})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, job := range jobs {
		if v := job.View(); v.State != StateDone {
			t.Fatalf("accepted job %s not finished by drain: %s", job.ID, v.State)
		}
	}
	if _, err := m.Submit("c1", JobRequest{Experiment: "e1"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: want ErrDraining, got %v", err)
	}
	if m.Ready() {
		t.Fatal("draining manager must not report ready")
	}
}

func TestDrainDeadlineCancelsRunningJobs(t *testing.T) {
	m := NewManager(Config{Sessions: 1, RatePerSec: -1, Run: fakeRun(10 * time.Second)})
	job, err := m.Submit("c1", JobRequest{Experiment: "e1"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); err == nil {
		t.Fatal("overrun drain must report that it cancelled jobs")
	}
	if v := job.View(); v.State != StateCancelled {
		t.Fatalf("drain overrun must cancel the running job, got %s", v.State)
	}
}

func TestParseChaos(t *testing.T) {
	c, err := ParseChaos("latency=20ms:0.5,panic:0.1,cancel:0.2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Latency != 20*time.Millisecond || c.LatencyP != 0.5 || c.PanicP != 0.1 || c.CancelP != 0.2 {
		t.Fatalf("bad parse: %+v", c)
	}
	if got := c.String(); got != "latency=20ms:0.5,panic:0.1,cancel:0.2" {
		t.Fatalf("round trip: %q", got)
	}
	if c, err := ParseChaos("", 1); c != nil || err != nil {
		t.Fatalf("empty spec must disable chaos, got %v %v", c, err)
	}
	for _, bad := range []string{"latency=20ms", "panic:2", "warp:0.1", "latency=x:0.5"} {
		if _, err := ParseChaos(bad, 1); err == nil {
			t.Fatalf("spec %q must be rejected", bad)
		}
	}
	var nilChaos *Chaos
	if nilChaos.roll(1) {
		t.Fatal("nil chaos must never fire")
	}
	if nilChaos.String() != "off" {
		t.Fatal("nil chaos renders off")
	}
}

func TestLimiterRefills(t *testing.T) {
	l := newLimiter(10, 1)
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("first token must be granted")
	}
	ok, retry := l.allow("c")
	if ok || retry <= 0 {
		t.Fatalf("empty bucket must report a wait, got ok=%v retry=%v", ok, retry)
	}
	now = now.Add(200 * time.Millisecond) // 2 tokens at 10/s, capped at burst 1
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("refilled token must be granted")
	}
}

// TestLimiterEvictsIdleBuckets pins the bucket map's bound: a client
// idle long enough to have refilled to a full burst is indistinguishable
// from one never seen, so its bucket must be deleted — without the
// sweep, every address ever to hit the daemon stayed resident forever.
func TestLimiterEvictsIdleBuckets(t *testing.T) {
	l := newLimiter(1, 5) // sweep cadence = one full refill = 5s
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < 50; i++ {
		l.allow(fmt.Sprintf("idle-%d", i))
	}
	l.mu.Lock()
	grown := len(l.buckets)
	l.mu.Unlock()
	if grown != 50 {
		t.Fatalf("bucket map holds %d clients, want 50", grown)
	}
	// A busy client drains its whole burst late enough that it is still
	// mid-refill when the sweep fires; it must survive the eviction.
	now = now.Add(4 * time.Second)
	for i := 0; i < 5; i++ {
		l.allow("busy")
	}
	now = now.Add(time.Second) // one full idle refill since the first allow
	l.allow("trigger")
	l.mu.Lock()
	n := len(l.buckets)
	_, busyKept := l.buckets["busy"]
	_, idleKept := l.buckets["idle-0"]
	l.mu.Unlock()
	if !busyKept {
		t.Fatal("mid-refill bucket evicted; its rate-limit state was lost")
	}
	if idleKept {
		t.Fatal("idle-refilled bucket retained; the map does not shrink")
	}
	if n != 2 {
		t.Fatalf("bucket map holds %d clients after sweep, want 2 (busy + trigger)", n)
	}
	// An evicted client starts over with a full bucket — same semantics
	// as if it had been retained and refilled.
	if ok, _ := l.allow("idle-0"); !ok {
		t.Fatal("evicted client denied its post-refill token")
	}
}

// --- HTTP surface ---

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Drain(ctx)
	})
	return srv, m
}

func doJSON(t *testing.T, method, url, body string) (int, http.Header, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		decoded = nil
	}
	return resp.StatusCode, resp.Header, decoded
}

func TestHTTPLifecycle(t *testing.T) {
	srv, _ := newTestServer(t, Config{Sessions: 1, RatePerSec: -1, Run: fakeRun(5 * time.Millisecond)})

	code, _, body := doJSON(t, "POST", srv.URL+"/v1/jobs", `{"experiment":"e3","horizon":1000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: want 202, got %d (%v)", code, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("submit response missing id: %v", body)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _, body = doJSON(t, "GET", srv.URL+"/v1/jobs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("status: want 200, got %d", code)
		}
		if body["state"] == string(StateDone) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %v", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := fmt.Fprint(buf, resp); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: want 200, got %d", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, _ := newTestServer(t, Config{Sessions: 1, RatePerSec: -1, Run: fakeRun(time.Millisecond)})

	if code, _, _ := doJSON(t, "POST", srv.URL+"/v1/jobs", `{"experiment":"nope"}`); code != http.StatusBadRequest {
		t.Fatalf("bad experiment: want 400, got %d", code)
	}
	if code, _, _ := doJSON(t, "POST", srv.URL+"/v1/jobs", `{bad json`); code != http.StatusBadRequest {
		t.Fatalf("bad body: want 400, got %d", code)
	}
	if code, _, _ := doJSON(t, "GET", srv.URL+"/v1/jobs/job-999", ""); code != http.StatusNotFound {
		t.Fatalf("unknown job: want 404, got %d", code)
	}
	if code, _, _ := doJSON(t, "DELETE", srv.URL+"/v1/jobs/job-999", ""); code != http.StatusNotFound {
		t.Fatalf("cancel unknown: want 404, got %d", code)
	}
}

func TestHTTPQueueFullIs429WithRetryAfter(t *testing.T) {
	block := make(chan struct{})
	srv, _ := newTestServer(t, Config{
		Sessions: 1, QueueDepth: 1, RatePerSec: -1,
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return "ok", nil
		},
	})
	defer close(block)
	sawShed := false
	for i := 0; i < 4; i++ {
		code, hdr, _ := doJSON(t, "POST", srv.URL+"/v1/jobs", `{"experiment":"e1"}`)
		if code == http.StatusTooManyRequests {
			sawShed = true
			if hdr.Get("Retry-After") == "" {
				t.Fatal("429 must carry Retry-After")
			}
		}
	}
	if !sawShed {
		t.Fatal("full queue never shed with 429")
	}
}

func TestHTTPRateLimit429(t *testing.T) {
	srv, _ := newTestServer(t, Config{
		Sessions: 1, QueueDepth: 100, RatePerSec: 0.5, Burst: 1, Run: fakeRun(0),
		TrustClientHeader: true,
	})
	client := func() (int, http.Header) {
		req, _ := http.NewRequest("POST", srv.URL+"/v1/jobs", strings.NewReader(`{"experiment":"e1"}`))
		req.Header.Set("X-Hammertime-Client", "hog")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}
	if code, _ := client(); code != http.StatusAccepted {
		t.Fatalf("first: want 202, got %d", code)
	}
	code, hdr := client()
	if code != http.StatusTooManyRequests || hdr.Get("Retry-After") == "" {
		t.Fatalf("second: want 429 + Retry-After, got %d %q", code, hdr.Get("Retry-After"))
	}
}

func TestHTTPHealthReadyMetrics(t *testing.T) {
	srv, m := newTestServer(t, Config{Sessions: 1, RatePerSec: -1, Run: fakeRun(time.Millisecond)})
	if code, _, _ := doJSON(t, "GET", srv.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz: want 200, got %d", code)
	}
	if code, _, _ := doJSON(t, "GET", srv.URL+"/readyz", ""); code != http.StatusOK {
		t.Fatalf("readyz: want 200, got %d", code)
	}
	job, err := m.Submit("c1", JobRequest{Experiment: "e1"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	code, _, body := doJSON(t, "GET", srv.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics: want 200, got %d", code)
	}
	counters, _ := body["counters"].([]any)
	found := false
	for _, c := range counters {
		if entry, ok := c.(map[string]any); ok && entry["name"] == "serve.jobs.submitted" {
			found = true
		}
	}
	if !found {
		t.Fatalf("metrics missing submit counter: %v", body)
	}

	// Draining flips readyz to 503 but healthz stays green.
	go m.Drain(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, hdr, _ := doJSON(t, "GET", srv.URL+"/readyz", "")
		if code == http.StatusServiceUnavailable {
			if hdr.Get("Retry-After") == "" {
				t.Fatal("draining readyz must carry Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 during drain")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _, _ := doJSON(t, "GET", srv.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz during drain: want 200, got %d", code)
	}
	if code, _, _ := doJSON(t, "POST", srv.URL+"/v1/jobs", `{"experiment":"e1"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: want 503, got %d", code)
	}
}

// TestClientHeaderGating pins the identity rules: the unauthenticated
// X-Hammertime-Client header is ignored unless the daemon was started
// with TrustClientHeader — otherwise any caller could mint a fresh
// rate-limit identity per request or spend another client's budget.
func TestClientHeaderGating(t *testing.T) {
	req := httptest.NewRequest("POST", "/v1/jobs", nil)
	req.RemoteAddr = "192.0.2.7:4444"
	req.Header.Set("X-Hammertime-Client", "spoofed")

	m := NewManager(Config{Sessions: 1, Run: fakeRun(0)})
	defer m.Drain(context.Background())
	if got := m.clientKey(req); got != "192.0.2.7" {
		t.Fatalf("untrusted header used as client key: %q", got)
	}

	trusted := NewManager(Config{Sessions: 1, Run: fakeRun(0), TrustClientHeader: true})
	defer trusted.Drain(context.Background())
	if got := trusted.clientKey(req); got != "spoofed" {
		t.Fatalf("trusted header ignored: %q", got)
	}
	req.Header.Del("X-Hammertime-Client")
	if got := trusted.clientKey(req); got != "192.0.2.7" {
		t.Fatalf("missing header must fall back to the remote host, got %q", got)
	}
}

// retryAfterSecs parses a Retry-After header, failing the test if it is
// missing or not a positive integer.
func retryAfterSecs(t *testing.T, hdr http.Header) int {
	t.Helper()
	v := hdr.Get("Retry-After")
	if v == "" {
		t.Fatal("shed response missing Retry-After")
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer of seconds", v)
	}
	return secs
}

// TestHTTPShedRetryAfterDerived walks all three shed paths — 429 queue
// full, 429 over rate, 503 draining — and pins that each carries a
// positive Retry-After derived from measured state rather than a
// hardcoded constant (the draining value must track the drain deadline).
func TestHTTPShedRetryAfterDerived(t *testing.T) {
	block := make(chan struct{})
	srv, m := newTestServer(t, Config{
		Sessions: 1, QueueDepth: 2, RatePerSec: 0.001, Burst: 2,
		TrustClientHeader: true,
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return "ok", nil
		},
	})
	defer close(block)
	submit := func(client string) (int, http.Header) {
		req, _ := http.NewRequest("POST", srv.URL+"/v1/jobs", strings.NewReader(`{"experiment":"e1"}`))
		req.Header.Set("X-Hammertime-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	// Client "a" spends its burst of 2 while the queue still has room;
	// its third submission is over rate, and at 0.001/s the derived wait
	// is on the order of the refill time (~1000s), never the old
	// constant's scale of seconds. (The rate path must be probed while
	// the queue has room: queue-full is checked first and sheds without
	// consulting — or charging — the limiter.)
	if code, _ := submit("a"); code != http.StatusAccepted {
		t.Fatalf("first: want 202, got %d", code)
	}
	if code, _ := submit("a"); code != http.StatusAccepted {
		t.Fatalf("second: want 202, got %d", code)
	}
	code, hdr := submit("a")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate: want 429, got %d", code)
	}
	if secs := retryAfterSecs(t, hdr); secs < 60 {
		t.Fatalf("over-rate Retry-After %ds does not reflect the 0.001/s refill", secs)
	}

	// A fresh client tops the queue off (one running + two queued); the
	// next fresh-client submission is shed for queue depth with a
	// positive derived Retry-After.
	if code, _ := submit("b"); code != http.StatusAccepted {
		t.Fatalf("third: want 202, got %d", code)
	}
	code, hdr = submit("c")
	if code != http.StatusTooManyRequests {
		t.Fatalf("queue full: want 429, got %d", code)
	}
	retryAfterSecs(t, hdr)

	// Drain with a deadline: the 503s' Retry-After must track the
	// deadline's remaining time, not a constant.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	go m.Drain(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for m.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("manager never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	code, hdr = submit("d")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: want 503, got %d", code)
	}
	if secs := retryAfterSecs(t, hdr); secs < 30 || secs > 121 {
		t.Fatalf("draining Retry-After %ds does not track the 2m drain deadline", secs)
	}
}

// TestMetricsExtraMerge pins the ExtraMetrics hook: contributed counters
// and gauges surface in the same snapshot as the serve metrics — the
// wiring the cluster dispatcher uses to expose cache and steal counters
// on /metrics.
func TestMetricsExtraMerge(t *testing.T) {
	m := NewManager(Config{
		Sessions: 1, RatePerSec: -1, Run: fakeRun(0),
		ExtraMetrics: func(st *sim.Stats) {
			st.Add("cluster.cache.hits", 7)
			st.SetGauge("cluster.workers.live", 2)
		},
	})
	defer m.Drain(context.Background())
	job, err := m.Submit("c1", JobRequest{Experiment: "e1"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)

	snap := m.Metrics()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["cluster.cache.hits"] != 7 {
		t.Fatalf("extra counter missing from snapshot: %v", snap.Counters)
	}
	if counters["serve.jobs.submitted"] != 1 {
		t.Fatalf("serve counters lost in merge: %v", snap.Counters)
	}
	var live float64 = -1
	for _, g := range snap.Gauges {
		if g.Name == "cluster.workers.live" {
			live = g.Value
		}
	}
	if live != 2 {
		t.Fatalf("extra gauge missing from snapshot: %v", snap.Gauges)
	}
	// The hook must contribute to fresh scratch state each call, not
	// accumulate across snapshots.
	snap = m.Metrics()
	for _, c := range snap.Counters {
		if c.Name == "cluster.cache.hits" && c.Value != 7 {
			t.Fatalf("extra counter accumulated across snapshots: %d", c.Value)
		}
	}
}

func TestDurationJSON(t *testing.T) {
	var req JobRequest
	if err := json.Unmarshal([]byte(`{"experiment":"e1","timeout":"30s"}`), &req); err != nil {
		t.Fatal(err)
	}
	if time.Duration(req.Timeout) != 30*time.Second {
		t.Fatalf("want 30s, got %v", time.Duration(req.Timeout))
	}
	b, err := json.Marshal(JobRequest{Experiment: "e1", Timeout: Duration(time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"1m0s"`) {
		t.Fatalf("duration must marshal as a string: %s", b)
	}
	if err := json.Unmarshal([]byte(`{"timeout":"never"}`), &req); err == nil {
		t.Fatal("bad duration must error")
	}
}

// TestDefaultRunnerDispatches runs the real harness dispatcher through
// the pool once (the smallest experiment at a small horizon), pinning
// the serve->harness->core wiring end to end.
func TestDefaultRunnerDispatches(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	m := NewManager(Config{Sessions: 1, RatePerSec: -1})
	defer m.Drain(context.Background())
	job, err := m.Submit("c1", JobRequest{Experiment: "e7"})
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, job)
	if v.State != StateDone {
		t.Fatalf("e7 via pool: %s (%s)", v.State, v.Error)
	}
	table, _ := job.Result()
	if !strings.Contains(table, "E7") {
		t.Fatalf("result is not the E7 table: %q", table)
	}
}
