package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseKinds(t *testing.T) {
	for _, c := range []struct {
		in   string
		want []Kind
	}{
		{"", nil},
		{"all", nil},
		{"act", []Kind{KindACT}},
		{"act, bit-flip ,ref", []Kind{KindACT, KindBitFlip, KindREF}},
	} {
		got, err := ParseKinds(c.in)
		if err != nil {
			t.Fatalf("ParseKinds(%q): %v", c.in, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("ParseKinds(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ParseKinds(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
	if _, err := ParseKinds("act,bogus"); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestJSONLJobTag(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	rec := NewRecorder(j)
	rec.Emit(Event{Kind: KindACT, Cycle: 1, Bank: 0, Row: 5, Domain: -1})
	rec.SetJob("job-7")
	rec.Emit(Event{Kind: KindACT, Cycle: 2, Bank: 0, Row: 5, Domain: -1})
	rec.SetJob("") // untag
	rec.Emit(Event{Kind: KindACT, Cycle: 3, Bank: 0, Row: 5, Domain: -1})
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not JSON: %v (%s)", i, err, line)
		}
		job, tagged := m["job"]
		if i == 1 {
			if job != "job-7" {
				t.Fatalf("line 1 job = %v, want job-7", job)
			}
		} else if tagged {
			t.Fatalf("line %d unexpectedly tagged: %s", i, line)
		}
	}
}

func TestChromeTraceJobTagAndAsyncSpan(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	ct.SetJob("job-3")
	ct.Record(Event{Kind: KindREF, Cycle: 10, Bank: -1, Row: -1, Domain: -1})
	// An event with no optional fields at all: the job arg must not
	// produce a leading comma.
	ct.Record(Event{Kind: KindREF, Cycle: 11, Bank: -1, Row: -1, Domain: -1})
	ct.AsyncSpan(true, 1, "job", 0, [][2]string{{"trace", "00000000000000ab"}})
	ct.AsyncSpan(true, 2, "cell \"quoted\"", 5.5, nil)
	ct.AsyncSpan(false, 2, "cell \"quoted\"", 9.25, nil)
	ct.AsyncSpan(false, 1, "job", 10, nil)
	if err := ct.Flush(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			ID   uint64         `json:"id"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	spans, instants, spanProcNamed := 0, 0, false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "b", "e":
			spans++
			if ev.Pid != ctPidSpans {
				t.Fatalf("span on pid %d", ev.Pid)
			}
		case "i":
			instants++
			if ev.Args["job"] != "job-3" {
				t.Fatalf("instant event missing job tag: %v", ev.Args)
			}
		case "M":
			if name, _ := ev.Args["name"].(string); ev.Pid == ctPidSpans && name == "trace" {
				spanProcNamed = true
			}
		}
	}
	if spans != 4 || instants != 2 {
		t.Fatalf("got %d span halves, %d instants; want 4, 2", spans, instants)
	}
	if !spanProcNamed {
		t.Fatal("spans process not named")
	}
}

func TestSyncSinkDelegatesSetJob(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	s := NewSyncSink(j)
	rec := NewRecorder(s)
	rec.SetJob("job-9")
	rec.Emit(Event{Kind: KindACT, Cycle: 1, Bank: 0, Row: 1, Domain: -1})
	rec.Flush()
	if !strings.Contains(buf.String(), `"job":"job-9"`) {
		t.Fatalf("job tag lost through SyncSink: %s", buf.String())
	}
	// A recorder whose sinks don't tag, and a nil recorder, are fine.
	NewRecorder(NewRing(4)).SetJob("x")
	var nr *Recorder
	nr.SetJob("x")
}
