package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Kind: KindACT, Cycle: 1})
	if r.Wants(KindACT) {
		t.Fatal("nil recorder wants events")
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("nil flush: %v", err)
	}
}

func TestEmitDisabledAllocates(t *testing.T) {
	var r *Recorder
	ev := Event{Kind: KindACT, Cycle: 7, Bank: 1, Row: 2, Domain: 0}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(ev)
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %.1f per op, want 0", allocs)
	}
}

func TestRingEmitAllocates(t *testing.T) {
	ring := NewRing(64)
	r := NewRecorder(ring)
	ev := Event{Kind: KindACT, Cycle: 7, Bank: 1, Row: 2, Domain: 0}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(ev)
	})
	if allocs != 0 {
		t.Fatalf("ring Emit allocates %.1f per op, want 0", allocs)
	}
}

func TestKindMask(t *testing.T) {
	ring := NewRing(16)
	r := NewRecorder(ring)
	r.SetKinds(KindBitFlip)
	if !r.Wants(KindBitFlip) || r.Wants(KindACT) {
		t.Fatal("mask not applied")
	}
	r.Emit(Event{Kind: KindACT})
	r.Emit(Event{Kind: KindBitFlip, Row: 9})
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Kind != KindBitFlip || evs[0].Row != 9 {
		t.Fatalf("got %v", evs)
	}
	r.SetKinds()
	if !r.Wants(KindACT) {
		t.Fatal("empty SetKinds should restore all kinds")
	}
}

func TestRingWrap(t *testing.T) {
	ring := NewRing(3)
	for i := 0; i < 5; i++ {
		ring.Record(Event{Kind: KindACT, Cycle: uint64(i)})
	}
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(i + 2); ev.Cycle != want {
			t.Fatalf("event %d cycle %d, want %d (oldest-first)", i, ev.Cycle, want)
		}
	}
	if ring.Total() != 5 {
		t.Fatalf("total %d, want 5", ring.Total())
	}
	if ring.Count(KindACT) != 3 {
		t.Fatalf("count %d, want 3", ring.Count(KindACT))
	}
}

func TestKindNamesComplete(t *testing.T) {
	seen := map[string]Kind{}
	for _, k := range Kinds() {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share name %q", prev, k, name)
		}
		seen[name] = k
	}
}

func TestJSONLOutput(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	r := NewRecorder(sink)
	r.Emit(Event{Kind: KindACT, Cycle: 42, Bank: 3, Row: 512, Domain: 1})
	r.Emit(Event{Kind: KindREF, Cycle: 100, Bank: -1, Row: -1, Domain: -1})
	r.Emit(Event{Kind: KindThrottle, Cycle: 7, Bank: 0, Row: 1, Domain: 2, Arg: 99})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["kind"] != "act" || first["cycle"] != float64(42) || first["bank"] != float64(3) {
		t.Fatalf("bad first line: %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if _, has := second["bank"]; has {
		t.Fatalf("sentinel bank should be omitted: %v", second)
	}
	var third map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &third); err != nil {
		t.Fatal(err)
	}
	if third["arg"] != float64(99) {
		t.Fatalf("arg missing: %v", third)
	}
}

// chromeFile is the top-level shape of a Chrome trace-event file.
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeTrace(&buf)
	r := NewRecorder(sink)
	r.Emit(Event{Kind: KindACT, Cycle: 10, Bank: 0, Row: 5, Domain: 0})
	r.Emit(Event{Kind: KindACT, Cycle: 20, Bank: 1, Row: 6, Domain: 1})
	r.Emit(Event{Kind: KindREF, Cycle: 30, Bank: -1, Row: -1, Domain: -1})
	r.Emit(Event{Kind: KindTRRCure, Cycle: 40, Bank: 1, Row: 6, Domain: -1})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("second flush must be a no-op, got %v", err)
	}
	var file chromeFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	banks := map[int]bool{}
	var sawREF, sawCure bool
	names := map[string]bool{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			names[ev.Name] = true
		case "i":
			switch ev.Name {
			case "act":
				if b, ok := ev.Args["bank"].(float64); ok {
					banks[int(b)] = true
				}
			case "ref":
				sawREF = true
			case "trr-cure":
				sawCure = true
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if len(banks) != 2 {
		t.Fatalf("ACTs on %d banks, want 2", len(banks))
	}
	if !sawREF || !sawCure {
		t.Fatalf("missing events: ref=%v cure=%v", sawREF, sawCure)
	}
	if !names["process_name"] || !names["thread_name"] {
		t.Fatal("missing track metadata events")
	}
}

func TestSyncSink(t *testing.T) {
	ring := NewRing(256)
	sink := NewSyncSink(ring)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				sink.Record(Event{Kind: KindACT, Cycle: uint64(g*100 + i)})
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if ring.Total() != 200 {
		t.Fatalf("total %d, want 200", ring.Total())
	}
}

// BenchmarkRecorderDisabled pins the cost of the disabled observability
// path: a nil *Recorder Emit must be branch-only, 0 allocs/op. CI fails
// if this ever allocates.
func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	ev := Event{Kind: KindACT, Cycle: 1, Bank: 2, Row: 3, Domain: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Cycle = uint64(i)
		r.Emit(ev)
	}
}

// BenchmarkRecorderRing measures the enabled path into the ring sink.
func BenchmarkRecorderRing(b *testing.B) {
	r := NewRecorder(NewRing(1024))
	ev := Event{Kind: KindACT, Cycle: 1, Bank: 2, Row: 3, Domain: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Cycle = uint64(i)
		r.Emit(ev)
	}
}
