package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// Ring is a bounded in-memory sink holding the most recent events. It is
// the test sink: cheap, allocation-free after construction, and easy to
// assert against.
type Ring struct {
	buf     []Event
	next    int
	wrapped bool
	total   uint64
}

// NewRing returns a ring buffer retaining the last n events (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Record implements Sink.
func (r *Ring) Record(ev Event) {
	r.buf[r.next] = ev
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// Flush implements Sink (no-op).
func (*Ring) Flush() error { return nil }

// Total returns how many events were recorded over the ring's lifetime,
// including ones that have since been overwritten.
func (r *Ring) Total() uint64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Count returns how many events of kind k are currently retained.
func (r *Ring) Count(k Kind) int {
	n := 0
	for _, ev := range r.Events() {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// JSONL streams events as JSON lines:
//
//	{"kind":"act","cycle":1042,"bank":3,"row":512,"domain":1}
//
// Zero-valued optional fields (line, arg) and sentinel bank/row/domain
// (-1) are omitted, keeping lines short. Output is buffered; call Flush
// (or Recorder.Flush) before closing the underlying writer.
type JSONL struct {
	w   *bufio.Writer
	err error
	// jobFrag is the precomputed `,"job":"<id>"` tail appended to every
	// line once SetJob is called — job attribution without per-event
	// allocation.
	jobFrag string
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriterSize(w, 1<<16)}
}

// Record implements Sink.
func (j *JSONL) Record(ev Event) {
	if j.err != nil {
		return
	}
	b := j.w
	b.WriteString(`{"kind":"`)
	b.WriteString(ev.Kind.String())
	b.WriteString(`","cycle":`)
	writeUint(b, ev.Cycle)
	if ev.Bank >= 0 {
		b.WriteString(`,"bank":`)
		writeInt(b, ev.Bank)
	}
	if ev.Row >= 0 {
		b.WriteString(`,"row":`)
		writeInt(b, ev.Row)
	}
	if ev.Domain >= 0 {
		b.WriteString(`,"domain":`)
		writeInt(b, ev.Domain)
	}
	if ev.Line != 0 {
		b.WriteString(`,"line":`)
		writeUint(b, ev.Line)
	}
	if ev.Arg != 0 {
		b.WriteString(`,"arg":`)
		writeUint(b, ev.Arg)
	}
	b.WriteString(j.jobFrag)
	b.WriteString("}\n")
}

// SetJob implements JobTagger: subsequent lines carry `"job":"<id>"`.
func (j *JSONL) SetJob(id string) {
	if id == "" {
		j.jobFrag = ""
		return
	}
	j.jobFrag = `,"job":` + jsonString(id)
}

// Raw writes one pre-built JSON line verbatim (a trailing newline is
// added). It lets non-Event records — telemetry span exports — share a
// JSONL stream with simulator events.
func (j *JSONL) Raw(line string) {
	if j.err != nil {
		return
	}
	j.w.WriteString(line)
	j.w.WriteByte('\n')
}

// Flush implements Sink.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

func writeUint(b *bufio.Writer, v uint64) {
	var scratch [20]byte
	b.Write(strconv.AppendUint(scratch[:0], v, 10))
}

func writeInt(b *bufio.Writer, v int) {
	var scratch [20]byte
	b.Write(strconv.AppendInt(scratch[:0], int64(v), 10))
}

// jsonString quotes and escapes s as a JSON string literal.
func jsonString(s string) string { return strconv.Quote(s) }

// ChromeTrace streams events in Chrome trace-event JSON format, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Layout:
//
//   - process "dram" (pid 0): one thread track per bank (tid = bank+1),
//     plus tid 0 ("rank") for rank-wide events like REF;
//   - process "defense" (pid 1): one track per triggering subsystem
//     (TRR, Graphene, throttle, ACT interrupt, defense detectors);
//   - process "system" (pid 2): OS/cache events (migration, line locks)
//     and bit flips.
//
// Every event is an instant event (ph "i") with ts = simulation cycle
// (the viewer renders it as microseconds; only relative spacing matters).
// Metadata (process_name/thread_name) is emitted lazily the first time a
// track appears. Flush closes the top-level JSON array; the file is not
// valid JSON until flushed.
type ChromeTrace struct {
	w       *bufio.Writer
	err     error
	wrote   bool
	flushed bool
	named   map[[2]int]bool
	jobFrag string // precomputed `"job":"<id>"` args field, "" when untagged
	spanPid bool   // pid 3 process_name emitted
}

// Chrome-trace process ids (tracks group under these).
const (
	ctPidDRAM    = 0
	ctPidDefense = 1
	ctPidSystem  = 2
	ctPidSpans   = 3
)

// NewChromeTrace returns a sink writing a Chrome trace-event file to w.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	c := &ChromeTrace{
		w:     bufio.NewWriterSize(w, 1<<16),
		named: make(map[[2]int]bool),
	}
	c.w.WriteString(`{"traceEvents":[`)
	c.metaEvent(ctPidDRAM, -1, "process_name", "dram")
	c.metaEvent(ctPidDefense, -1, "process_name", "defense")
	c.metaEvent(ctPidSystem, -1, "process_name", "system")
	return c
}

// Record implements Sink.
func (c *ChromeTrace) Record(ev Event) {
	if c.err != nil {
		return
	}
	pid, tid, track := c.route(ev)
	c.ensureTrack(pid, tid, track)
	c.sep()
	b := c.w
	b.WriteString(`{"name":"`)
	b.WriteString(ev.Kind.String())
	b.WriteString(`","ph":"i","s":"t","pid":`)
	writeInt(b, pid)
	b.WriteString(`,"tid":`)
	writeInt(b, tid)
	b.WriteString(`,"ts":`)
	writeUint(b, ev.Cycle)
	b.WriteString(`,"args":{`)
	first := true
	field := func(name string, v int64) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteByte('"')
		b.WriteString(name)
		b.WriteString(`":`)
		var scratch [20]byte
		b.Write(strconv.AppendInt(scratch[:0], v, 10))
	}
	if ev.Bank >= 0 {
		field("bank", int64(ev.Bank))
	}
	if ev.Row >= 0 {
		field("row", int64(ev.Row))
	}
	if ev.Domain >= 0 {
		field("domain", int64(ev.Domain))
	}
	if ev.Line != 0 {
		field("line", int64(ev.Line))
	}
	if ev.Arg != 0 {
		field("arg", int64(ev.Arg))
	}
	if c.jobFrag != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(c.jobFrag)
	}
	b.WriteString("}}")
}

// SetJob implements JobTagger: subsequent events carry a "job" arg.
func (c *ChromeTrace) SetJob(id string) {
	if id == "" {
		c.jobFrag = ""
		return
	}
	c.jobFrag = `"job":` + jsonString(id)
}

// AsyncSpan writes one half of an async span event — ph "b" (begin) or
// "e" (end) — on the spans process (pid 3). Perfetto groups async
// events by (cat, id) and nests unbalanced begins within a group, so
// telemetry lanes map to ids: each parallel grid cell gets its own id
// and its machine-phase children nest inside it. tsMicros is wall time
// relative to the trace origin; args are pre-escaped by this method.
func (c *ChromeTrace) AsyncSpan(begin bool, id uint64, name string, tsMicros float64, args [][2]string) {
	if c.err != nil {
		return
	}
	if !c.spanPid {
		c.spanPid = true
		c.metaEvent(ctPidSpans, -1, "process_name", "trace")
	}
	c.sep()
	b := c.w
	b.WriteString(`{"name":`)
	b.WriteString(jsonString(name))
	if begin {
		b.WriteString(`,"cat":"span","ph":"b","id":`)
	} else {
		b.WriteString(`,"cat":"span","ph":"e","id":`)
	}
	writeUint(b, id)
	b.WriteString(`,"pid":`)
	writeInt(b, ctPidSpans)
	b.WriteString(`,"tid":0,"ts":`)
	b.WriteString(strconv.FormatFloat(tsMicros, 'f', 3, 64))
	b.WriteString(`,"args":{`)
	for i, kv := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(jsonString(kv[0]))
		b.WriteByte(':')
		b.WriteString(jsonString(kv[1]))
	}
	b.WriteString("}}")
}

// route maps an event to its (pid, tid, track-name) triple.
func (c *ChromeTrace) route(ev Event) (pid, tid int, track string) {
	switch ev.Kind {
	case KindACT, KindPRE, KindTargetedRefresh, KindRefNeighbors,
		KindRowHit, KindRowEmpty, KindRowConflict, KindREF, KindSeedDisturb:
		if ev.Bank < 0 {
			return ctPidDRAM, 0, "rank"
		}
		return ctPidDRAM, ev.Bank + 1, "bank " + strconv.Itoa(ev.Bank)
	case KindTRRCure:
		return ctPidDefense, 1, "trr"
	case KindGrapheneTrigger:
		return ctPidDefense, 2, "graphene"
	case KindThrottle:
		return ctPidDefense, 3, "blockhammer"
	case KindACTInterrupt:
		return ctPidDefense, 4, "act-interrupt"
	case KindDefenseTrigger:
		return ctPidDefense, 5, "defense"
	case KindPageMigration:
		return ctPidSystem, 1, "os"
	case KindLineLock, KindLineUnlock:
		return ctPidSystem, 2, "cache"
	case KindBitFlip:
		return ctPidSystem, 3, "flips"
	case KindCellRetry, KindCellFail:
		return ctPidSystem, 4, "harness"
	default:
		return ctPidSystem, 0, "misc"
	}
}

func (c *ChromeTrace) ensureTrack(pid, tid int, name string) {
	key := [2]int{pid, tid}
	if c.named[key] {
		return
	}
	c.named[key] = true
	c.metaEvent(pid, tid, "thread_name", name)
}

func (c *ChromeTrace) metaEvent(pid, tid int, metaName, value string) {
	c.sep()
	b := c.w
	b.WriteString(`{"name":"`)
	b.WriteString(metaName)
	b.WriteString(`","ph":"M","pid":`)
	writeInt(b, pid)
	if tid >= 0 {
		b.WriteString(`,"tid":`)
		writeInt(b, tid)
	}
	b.WriteString(`,"args":{"name":"`)
	b.WriteString(value)
	b.WriteString(`"}}`)
}

func (c *ChromeTrace) sep() {
	if c.wrote {
		c.w.WriteByte(',')
	}
	c.wrote = true
}

// Flush implements Sink: closes the JSON array and flushes the buffer.
// Further flushes are no-ops; the file is not valid JSON until flushed.
func (c *ChromeTrace) Flush() error {
	if c.err != nil || c.flushed {
		return c.err
	}
	c.flushed = true
	c.w.WriteString("]}\n")
	c.err = c.w.Flush()
	return c.err
}

// SyncSink serializes access to an inner sink with a mutex. Wrap shared
// sinks with it when one recorder serves multiple parallel harness cells.
type SyncSink struct {
	mu    sync.Mutex
	inner Sink
}

// NewSyncSink wraps inner in a mutex.
func NewSyncSink(inner Sink) *SyncSink { return &SyncSink{inner: inner} }

// Record implements Sink.
func (s *SyncSink) Record(ev Event) {
	s.mu.Lock()
	s.inner.Record(ev)
	s.mu.Unlock()
}

// Flush implements Sink.
func (s *SyncSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Flush()
}

// SetJob implements JobTagger by delegating to the inner sink.
func (s *SyncSink) SetJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.inner.(JobTagger); ok {
		t.SetJob(id)
	}
}
