// Package obs is the simulator-wide observability layer: a typed event
// bus that components (DRAM module, memory controller, cache, host OS,
// defenses) emit structured events into, and pluggable sinks that consume
// them — a bounded ring buffer for tests, a JSON-lines stream for offline
// analysis, and a Chrome trace-event stream that opens directly in
// Perfetto / chrome://tracing.
//
// Recording is strictly observer-only: no simulated component ever reads
// recorder state, so enabling any sink preserves byte-identical simulation
// results. With no recorder attached (the nil *Recorder fast path) the
// cost per emission site is one nil check and zero allocations —
// TestEmitDisabledAllocates and BenchmarkRecorderDisabled pin this.
package obs

import (
	"fmt"
	"strings"
)

// Kind identifies what happened. Events are flat value structs with a
// kind-specific Arg; Kind tells sinks how to label and route them.
type Kind uint8

const (
	// KindACT is a row activation (Bank, Row, Domain; Domain -1 for
	// mitigation-internal activations).
	KindACT Kind = iota
	// KindPRE is a bank precharge (Bank).
	KindPRE
	// KindREF is a periodic refresh command (rank-wide; Bank is -1).
	KindREF
	// KindTargetedRefresh is a single-row targeted refresh (Bank, Row) —
	// the §4.3 refresh instruction's DRAM-side effect, or PARA/Graphene.
	KindTargetedRefresh
	// KindRefNeighbors is a REF_NEIGHBORS command (Bank, Row, Arg=radius).
	KindRefNeighbors
	// KindRowHit is a request served from the open row (Bank, Row, Domain).
	KindRowHit
	// KindRowEmpty is a request that activated an idle bank.
	KindRowEmpty
	// KindRowConflict is a request that closed one row to open another.
	KindRowConflict
	// KindTRRCure is an in-DRAM TRR mitigation curing an aggressor's
	// neighbors (Bank, Row=cured aggressor).
	KindTRRCure
	// KindGrapheneTrigger is the in-MC Misra-Gries tracker crossing its
	// threshold (Bank, Row=hot aggressor).
	KindGrapheneTrigger
	// KindThrottle is a BlockHammer-style admission delay
	// (Bank, Row, Domain, Arg=delay cycles).
	KindThrottle
	// KindACTInterrupt is an ACT-counter overflow interrupt delivery
	// (Bank, Row, Domain, Line — address fields valid in precise mode).
	KindACTInterrupt
	// KindBitFlip is a Rowhammer bit flip (Bank, Row=victim,
	// Domain=aggressor domain or -1, Arg=bit offset within the line).
	KindBitFlip
	// KindPageMigration is a wear-leveling page move
	// (Domain, Line=new frame, Arg=old frame).
	KindPageMigration
	// KindLineLock is a cache line pinned into the LLC (Line).
	KindLineLock
	// KindLineUnlock is a locked line released (Line).
	KindLineUnlock
	// KindDefenseTrigger is a software defense's detector flagging a
	// probable aggressor row (Bank, Row, Domain) — the decision point
	// between interrupt delivery and response.
	KindDefenseTrigger
	// KindCellRetry is an experiment-grid cell failing one attempt and
	// being handed back to the pool (Line=cell index, Arg=failed attempt
	// number). Cycle is 0: harness events are wall-clock, not simulated.
	KindCellRetry
	// KindCellFail is an experiment-grid cell exhausting its attempts and
	// being recorded as failed (Line=cell index, Arg=attempts made).
	KindCellFail
	// KindSeedDisturb is a direct (test/experiment) injection of
	// disturbance into a row, bypassing the ACT path (Bank, Row,
	// Arg=math.Float64bits of the new disturbance level). Emitted so
	// shadow models — the invariant auditor in internal/check — stay in
	// sync with the module.
	KindSeedDisturb

	numKinds
)

var kindNames = [numKinds]string{
	KindACT:             "act",
	KindPRE:             "pre",
	KindREF:             "ref",
	KindTargetedRefresh: "targeted-refresh",
	KindRefNeighbors:    "ref-neighbors",
	KindRowHit:          "row-hit",
	KindRowEmpty:        "row-empty",
	KindRowConflict:     "row-conflict",
	KindTRRCure:         "trr-cure",
	KindGrapheneTrigger: "graphene-trigger",
	KindThrottle:        "throttle",
	KindACTInterrupt:    "act-interrupt",
	KindBitFlip:         "bit-flip",
	KindPageMigration:   "page-migration",
	KindLineLock:        "line-lock",
	KindLineUnlock:      "line-unlock",
	KindDefenseTrigger:  "defense-trigger",
	KindCellRetry:       "cell-retry",
	KindCellFail:        "cell-fail",
	KindSeedDisturb:     "seed-disturb",
}

// String returns the event kind's stable wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Kinds returns every defined kind, in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKinds parses a comma-separated list of kind names ("act,bit-flip")
// into kinds. The empty string and "all" both mean every kind (nil,
// which SetKinds treats as "restore all"). Unknown names are an error
// listing the valid names.
func ParseKinds(csv string) ([]Kind, error) {
	csv = strings.TrimSpace(csv)
	if csv == "" || csv == "all" {
		return nil, nil
	}
	var kinds []Kind
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for k, kn := range kindNames {
			if kn == name {
				kinds = append(kinds, Kind(k))
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown event kind %q (valid: %s)", name, strings.Join(kindNames[:], ","))
		}
	}
	return kinds, nil
}

// Event is one simulator event. It is a flat value type — no pointers, no
// strings — so emitting one allocates nothing. Fields that do not apply to
// a kind hold their sentinel (-1 for Bank/Row/Domain, 0 for Line/Arg); see
// the Kind constants for which fields each kind populates.
type Event struct {
	Kind   Kind
	Cycle  uint64
	Bank   int
	Row    int
	Domain int
	Line   uint64
	// Arg is kind-specific: bit offset (bit-flip), delay cycles
	// (throttle), radius (ref-neighbors), old frame (page-migration).
	Arg uint64
}

// Sink consumes recorded events. Sinks are invoked synchronously from the
// simulation thread; implementations must not call back into the
// simulator. Flush finalizes any buffered output (closing a JSON array,
// flushing a bufio layer) and reports the first write error encountered.
type Sink interface {
	Record(Event)
	Flush() error
}

// Recorder fans events out to its sinks, filtered by an enabled-kind mask.
// The zero value and the nil pointer both mean "disabled": every component
// holds a *Recorder that is usually nil, and Emit on a nil receiver is a
// single branch — the zero-cost disabled path.
//
// Recorder is not safe for concurrent use by itself; when one recorder is
// shared across parallel harness cells, wrap each sink in NewSyncSink.
type Recorder struct {
	mask  uint64
	sinks []Sink
}

// NewRecorder returns a recorder emitting every event kind to the sinks.
func NewRecorder(sinks ...Sink) *Recorder {
	r := &Recorder{sinks: sinks}
	r.mask = (uint64(1) << numKinds) - 1
	return r
}

// SetKinds restricts the recorder to the given kinds (empty restores all).
func (r *Recorder) SetKinds(kinds ...Kind) {
	if len(kinds) == 0 {
		r.mask = (uint64(1) << numKinds) - 1
		return
	}
	r.mask = 0
	for _, k := range kinds {
		r.mask |= uint64(1) << k
	}
}

// Wants reports whether events of kind k would be recorded. Emission sites
// that must compute derived fields (address decoding, ownership lookups)
// guard on Wants first; plain sites just call Emit.
func (r *Recorder) Wants(k Kind) bool {
	return r != nil && r.mask&(uint64(1)<<k) != 0
}

// Emit records one event. Safe (and free) on a nil receiver.
func (r *Recorder) Emit(ev Event) {
	if r == nil || r.mask&(uint64(1)<<ev.Kind) == 0 {
		return
	}
	for _, s := range r.sinks {
		s.Record(ev)
	}
}

// JobTagger is the optional sink interface for job attribution. Sinks
// that implement it label subsequent events with the owning hammerd job
// ID — once, on the sink, not per event, so the Emit path stays
// allocation-free.
type JobTagger interface {
	SetJob(id string)
}

// SetJob tags every sink implementing JobTagger with the job ID, so
// events from concurrent sessions stay distinguishable in merged sinks.
// Safe on a nil receiver.
func (r *Recorder) SetJob(id string) {
	if r == nil {
		return
	}
	for _, s := range r.sinks {
		if t, ok := s.(JobTagger); ok {
			t.SetJob(id)
		}
	}
}

// Flush flushes every sink, returning the first error.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	var first error
	for _, s := range r.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Forward returns a sink that re-emits every event into r, honoring r's
// own kind mask. It lets one recorder be chained behind another — e.g.
// the invariant auditor sits first and forwards to the user's recorder.
// Flush is a no-op: the forwarded-to recorder's owner flushes it.
func Forward(r *Recorder) Sink { return forwardSink{r} }

type forwardSink struct{ r *Recorder }

func (f forwardSink) Record(ev Event) { f.r.Emit(ev) }
func (f forwardSink) Flush() error    { return nil }
